//! The wire codec: JSON shapes for job specs, results and progress events.
//!
//! Decoding goes through the validating [`JobSpec`] builders, so every spec
//! that crosses the wire obeys the same invariants as an in-process one — a
//! malformed or out-of-range spec is a 400, never a panicking shard.
//! Encoding is a total function of the [`JobResult`]: the integration suite
//! asserts that a result fetched over HTTP is byte-identical to the same
//! job's in-process result run through [`encode_result`].

use ehw_array::genotype::Genotype;
use ehw_array::pe::FaultBehaviour;
use ehw_evolution::fitness::EngineStats;
use ehw_fabric::FaultKind;
use ehw_image::noise::NoiseModel;
use ehw_image::GrayImage;
use ehw_platform::fault_campaign::{CampaignReport, EventResult, PositionResult};
use ehw_platform::jobs::{
    CancelKind, JobOutput, JobProgress, JobResult, JobSpec, StreamSourceSpec,
};
use ehw_platform::scenario::{
    CorrelationShape, FaultScenario, PlannedFault, ScenarioKind, ScenarioRegistry, StormPhase,
    TargetFilter,
};
use ehw_platform::self_healing::{RecoveryPolicy, RecoveryStep};
use ehw_platform::timing::EvolutionTimeEstimate;
use ehw_service::{
    Champion, ChampionKey, JobOptions, NoiseSegment, PgmDirSource, Priority, SceneKind,
    StreamEvent, StreamReport,
};

use crate::base64;
use crate::json::{bytesv, f64v, strv, u64v, usizev, Value};

/// Why a request document could not be turned into a job spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for WireError {}

fn err(message: impl Into<String>) -> WireError {
    WireError(message.into())
}

// ---------------------------------------------------------------------------
// Decoding: JSON -> (JobSpec, JobOptions)
// ---------------------------------------------------------------------------

/// Decodes a `POST /jobs` document into a validated spec plus its options,
/// resolving by-name scenario/policy references against the built-in
/// registry (see [`decode_spec_with`] for a custom one).
///
/// ```json
/// {
///   "kind": "evolution" | "cascade" | "fault_campaign" | "stream",
///   "input":     {"width": W, "height": H, "pixels": [..W*H bytes..]},
///   "reference": {"width": W, "height": H, "pixels": [..W*H bytes..]},
///   "generations": N?, "offspring": N?, "mutation_rate": N?,
///   "num_arrays": N?, "stages": N?, "target_fitness": N?, "seed": N?,
///   "baseline": [..13 bytes..]?, "arrays": [N..]?,
///   "recovery_generations": N?, "recovery_mutation_rate": N?,
///   "recovery_offspring": N?, "recovery_target": N?,
///   "scenario": "name"?, "policy": "name"?,
///   "warm_start": bool?,
///   "priority": "high" | "normal" | "low"?, "deadline_ms": N?
/// }
/// ```
///
/// Images may alternatively travel as `{"pgm_base64": "..."}` — a
/// base64-encoded binary PGM (P5) body, roughly 3× smaller than the JSON
/// pixel array.
///
/// Stream specs (`POST /streams`) replace the training pair with a
/// `"source"` member (see [`decode_stream_source`](self)) plus optional
/// `"initial"` genotype bytes, `"drift_window"`, `"drift_threshold_pct"`,
/// `"drift_cooldown"`, adaptation budgets (`"offspring"`, `"mutation_rate"`,
/// `"generations"`, `"max_millis"`, `"target_fitness"`) and `"warm_start"`.
///
/// Unknown kinds, missing images, unresolvable scenario/policy names and
/// builder-validation failures all come back as [`WireError`]s carrying a
/// human-readable reason.
pub fn decode_spec(doc: &Value) -> Result<(JobSpec, JobOptions), WireError> {
    decode_spec_with(doc, &ScenarioRegistry::builtin())
}

/// [`decode_spec`] against an explicit scenario/policy registry — what the
/// server uses, so deployments can overlay their own named entries from a
/// registry file.
pub fn decode_spec_with(
    doc: &Value,
    registry: &ScenarioRegistry,
) -> Result<(JobSpec, JobOptions), WireError> {
    let kind = doc
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| err("spec needs a string 'kind'"))?;
    // Stream specs carry their frames in a 'source' member instead of a
    // training pair, so the image decode is deferred to the kinds that
    // actually take one.
    let images = || -> Result<(GrayImage, GrayImage), WireError> {
        Ok((
            decode_image(
                doc.get("input").ok_or_else(|| err("spec needs 'input'"))?,
                "input",
            )?,
            decode_image(
                doc.get("reference")
                    .ok_or_else(|| err("spec needs 'reference'"))?,
                "reference",
            )?,
        ))
    };

    let field = |name: &str| -> Result<Option<usize>, WireError> {
        match doc.get(name) {
            None => Ok(None),
            Some(v) => v
                .as_usize()
                .map(Some)
                .ok_or_else(|| err(format!("'{name}' must be a non-negative integer"))),
        }
    };
    let seed = match doc.get("seed") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| err("'seed' must be a non-negative integer"))?,
        ),
    };

    let spec = match kind {
        "evolution" => {
            let (input, reference) = images()?;
            let mut builder = JobSpec::evolution(input, reference);
            if let Some(n) = field("offspring")? {
                builder = builder.offspring(n);
            }
            if let Some(n) = field("mutation_rate")? {
                builder = builder.mutation_rate(n);
            }
            if let Some(n) = field("generations")? {
                builder = builder.generations(n);
            }
            if let Some(n) = field("num_arrays")? {
                builder = builder.num_arrays(n);
            }
            if let Some(n) = field("target_fitness")? {
                builder = builder.target_fitness(n as u64);
            }
            if let Some(warm) = doc.get("warm_start") {
                let warm = warm
                    .as_bool()
                    .ok_or_else(|| err("'warm_start' must be a boolean"))?;
                builder = builder.warm_start(warm);
            }
            if let Some(s) = seed {
                builder = builder.seed(s);
            }
            builder.build()
        }
        "cascade" => {
            let (input, reference) = images()?;
            let mut builder = JobSpec::cascade(input, reference);
            if let Some(n) = field("stages")? {
                builder = builder.stages(n);
            }
            if let Some(n) = field("generations")? {
                builder = builder.generations(n);
            }
            if let Some(n) = field("offspring")? {
                builder = builder.offspring(n);
            }
            if let Some(n) = field("mutation_rate")? {
                builder = builder.mutation_rate(n);
            }
            if let Some(s) = seed {
                builder = builder.seed(s);
            }
            builder.build()
        }
        "fault_campaign" => {
            let (input, reference) = images()?;
            let mut builder = JobSpec::fault_campaign(input, reference);
            if let Some(bytes) = doc.get("baseline") {
                let bytes = decode_bytes(bytes, "baseline")?;
                let baseline = Genotype::decode(&bytes)
                    .ok_or_else(|| err("'baseline' is too short to decode as a genotype"))?;
                builder = builder.baseline(baseline);
            }
            if let Some(arrays) = doc.get("arrays") {
                let arrays = arrays
                    .as_array()
                    .ok_or_else(|| err("'arrays' must be an array of indices"))?
                    .iter()
                    .map(|v| {
                        v.as_usize()
                            .ok_or_else(|| err("'arrays' entries must be non-negative integers"))
                    })
                    .collect::<Result<Vec<usize>, WireError>>()?;
                builder = builder.arrays(arrays);
            }
            if let Some(n) = field("num_arrays")? {
                builder = builder.platform_arrays(n);
            }
            if let Some(n) = field("recovery_generations")? {
                builder = builder.recovery_generations(n);
            }
            if let Some(n) = field("recovery_mutation_rate")? {
                builder = builder.recovery_mutation_rate(n);
            }
            if let Some(n) = field("recovery_offspring")? {
                builder = builder.recovery_offspring(n);
            }
            if let Some(n) = field("recovery_target")? {
                builder = builder.recovery_target(n as u64);
            }
            if let Some(value) = doc.get("scenario") {
                let name = value
                    .as_str()
                    .ok_or_else(|| err("'scenario' must be a registry name string"))?;
                let scenario = registry
                    .scenario(name)
                    .map_err(|spec_error| err(format!("invalid spec: {spec_error}")))?;
                builder = builder.scenario(scenario.clone());
            }
            if let Some(value) = doc.get("policy") {
                let name = value
                    .as_str()
                    .ok_or_else(|| err("'policy' must be a registry name string"))?;
                let policy = registry
                    .policy(name)
                    .map_err(|spec_error| err(format!("invalid spec: {spec_error}")))?;
                builder = builder.policy(policy.clone());
            }
            if let Some(s) = seed {
                builder = builder.seed(s);
            }
            builder.build()
        }
        "stream" => {
            let source = decode_stream_source(
                doc.get("source")
                    .ok_or_else(|| err("stream specs need a 'source'"))?,
            )?;
            let mut builder = JobSpec::stream(source);
            if let Some(bytes) = doc.get("initial") {
                let bytes = decode_bytes(bytes, "initial")?;
                let initial = Genotype::decode(&bytes)
                    .ok_or_else(|| err("'initial' is too short to decode as a genotype"))?;
                builder = builder.initial(initial);
            }
            let mut drift = ehw_service::DriftConfig::default();
            if let Some(n) = field("drift_window")? {
                drift.window = n;
            }
            if let Some(n) = field("drift_threshold_pct")? {
                drift.threshold_pct =
                    u32::try_from(n).map_err(|_| err("'drift_threshold_pct' is out of range"))?;
            }
            if let Some(n) = field("drift_cooldown")? {
                drift.cooldown = n;
            }
            builder = builder.drift(drift);
            let mut adaptation = ehw_service::AdaptationConfig::default();
            if let Some(n) = field("offspring")? {
                adaptation.offspring = n;
            }
            if let Some(n) = field("mutation_rate")? {
                adaptation.mutation_rate = n;
            }
            if let Some(n) = field("generations")? {
                adaptation.generations = n;
            }
            if let Some(n) = field("max_millis")? {
                adaptation.max_millis = Some(n as u64);
            }
            if let Some(n) = field("target_fitness")? {
                adaptation.target_fitness = Some(n as u64);
            }
            builder = builder.adaptation(adaptation);
            if let Some(warm) = doc.get("warm_start") {
                let warm = warm
                    .as_bool()
                    .ok_or_else(|| err("'warm_start' must be a boolean"))?;
                builder = builder.warm_start(warm);
            }
            if let Some(s) = seed {
                builder = builder.seed(s);
            }
            builder.build()
        }
        other => return Err(err(format!("unknown job kind '{other}'"))),
    }
    .map_err(|spec_error| err(format!("invalid spec: {spec_error}")))?;

    let mut options = JobOptions::default();
    if let Some(priority) = doc.get("priority") {
        options.priority = match priority.as_str() {
            Some("high") => Priority::High,
            Some("normal") => Priority::Normal,
            Some("low") => Priority::Low,
            _ => return Err(err("'priority' must be \"high\", \"normal\" or \"low\"")),
        };
    }
    if let Some(deadline) = doc.get("deadline_ms") {
        let ms = deadline
            .as_u64()
            .ok_or_else(|| err("'deadline_ms' must be a non-negative integer"))?;
        options.deadline = Some(std::time::Duration::from_millis(ms));
    }
    Ok((spec, options))
}

fn decode_image(value: &Value, name: &str) -> Result<GrayImage, WireError> {
    // Compact transport: a base64-encoded binary PGM (P5) body carries its
    // own dimensions and ships raw bytes instead of a JSON number per pixel.
    if let Some(encoded) = value.get("pgm_base64") {
        let encoded = encoded
            .as_str()
            .ok_or_else(|| err(format!("'{name}.pgm_base64' must be a string")))?;
        let bytes = base64::decode(encoded)
            .map_err(|reason| err(format!("'{name}.pgm_base64': {reason}")))?;
        return ehw_image::pgm::decode(&bytes)
            .map_err(|reason| err(format!("'{name}.pgm_base64' is not a valid PGM: {reason}")));
    }
    let width = value
        .get("width")
        .and_then(Value::as_usize)
        .ok_or_else(|| err(format!("'{name}' needs an integer 'width'")))?;
    let height = value
        .get("height")
        .and_then(Value::as_usize)
        .ok_or_else(|| err(format!("'{name}' needs an integer 'height'")))?;
    let pixels = decode_bytes(
        value
            .get("pixels")
            .ok_or_else(|| err(format!("'{name}' needs a 'pixels' array")))?,
        name,
    )?;
    if pixels.len() != width.saturating_mul(height) {
        return Err(err(format!(
            "'{name}' has {} pixels but {width}x{height} needs {}",
            pixels.len(),
            width.saturating_mul(height)
        )));
    }
    if width == 0 || height == 0 {
        return Err(err(format!("'{name}' must be at least 1x1")));
    }
    Ok(GrayImage::from_vec(width, height, pixels))
}

fn decode_bytes(value: &Value, name: &str) -> Result<Vec<u8>, WireError> {
    value
        .as_array()
        .ok_or_else(|| err(format!("'{name}' must be an array of bytes")))?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u8::try_from(n).ok())
                .ok_or_else(|| err(format!("'{name}' entries must be integers in 0..=255")))
        })
        .collect()
}

/// Decodes the `source` member of a stream spec.
///
/// ```json
/// {"type": "synthetic", "scene": "shapes", "complexity": 4,
///  "width": W, "height": H, "frames": N,
///  "schedule": [{"start_frame": 0, "noise": {"model": "salt_pepper", "density": 0.2}}, ...]}
/// {"type": "pgm_dir", "dir": "/frames", "reference": "/frames/clean.pgm"}
/// ```
///
/// The `pgm_dir` variant reads **server-side** paths and loads every frame
/// eagerly, so a missing or malformed file is a 400 at submission.
fn decode_stream_source(value: &Value) -> Result<StreamSourceSpec, WireError> {
    let dim = |name: &str| -> Result<usize, WireError> {
        value
            .get(name)
            .and_then(Value::as_usize)
            .ok_or_else(|| err(format!("synthetic sources need an integer '{name}'")))
    };
    match value.get("type").and_then(Value::as_str) {
        Some("synthetic") => {
            let scene = decode_scene(value)?;
            let schedule = value
                .get("schedule")
                .and_then(Value::as_array)
                .ok_or_else(|| err("synthetic sources need a 'schedule' array"))?
                .iter()
                .map(decode_noise_segment)
                .collect::<Result<Vec<_>, WireError>>()?;
            Ok(StreamSourceSpec::Synthetic {
                scene,
                width: dim("width")?,
                height: dim("height")?,
                frames: dim("frames")?,
                schedule,
            })
        }
        Some("pgm_dir") => {
            let path = |name: &str| -> Result<&str, WireError> {
                value
                    .get(name)
                    .and_then(Value::as_str)
                    .ok_or_else(|| err(format!("pgm_dir sources need a string '{name}'")))
            };
            let source = PgmDirSource::new(path("dir")?, path("reference")?)
                .map_err(|reason| err(format!("invalid pgm_dir source: {reason}")))?;
            Ok(StreamSourceSpec::PgmDir(source))
        }
        _ => Err(err("source 'type' must be \"synthetic\" or \"pgm_dir\"")),
    }
}

fn decode_scene(value: &Value) -> Result<SceneKind, WireError> {
    let param = |name: &str| -> Result<usize, WireError> {
        value
            .get(name)
            .and_then(Value::as_usize)
            .ok_or_else(|| err(format!("this scene needs an integer '{name}'")))
    };
    match value.get("scene").and_then(Value::as_str) {
        Some("shapes") => Ok(SceneKind::Shapes {
            complexity: param("complexity")?,
        }),
        Some("gradient") => Ok(SceneKind::Gradient),
        Some("diagonal_gradient") => Ok(SceneKind::DiagonalGradient),
        Some("checkerboard") => Ok(SceneKind::Checkerboard {
            cell: param("cell")?,
        }),
        Some("step_edge") => Ok(SceneKind::StepEdge),
        Some("rings") => Ok(SceneKind::Rings {
            period: param("period")?,
        }),
        _ => Err(err(
            "'scene' must be \"shapes\", \"gradient\", \"diagonal_gradient\", \
             \"checkerboard\", \"step_edge\" or \"rings\"",
        )),
    }
}

fn decode_noise_segment(value: &Value) -> Result<NoiseSegment, WireError> {
    let start_frame = value
        .get("start_frame")
        .and_then(Value::as_usize)
        .ok_or_else(|| err("schedule segments need an integer 'start_frame'"))?;
    let noise = value
        .get("noise")
        .ok_or_else(|| err("schedule segments need a 'noise' object"))?;
    let density = |name: &str| -> Result<f64, WireError> {
        noise
            .get(name)
            .and_then(Value::as_f64)
            .ok_or_else(|| err(format!("this noise model needs a number '{name}'")))
    };
    let count = |name: &str| -> Result<usize, WireError> {
        noise
            .get(name)
            .and_then(Value::as_usize)
            .ok_or_else(|| err(format!("this noise model needs an integer '{name}'")))
    };
    let noise = match noise.get("model").and_then(Value::as_str) {
        Some("salt_pepper") => NoiseModel::SaltPepper {
            density: density("density")?,
        },
        Some("gaussian") => NoiseModel::Gaussian {
            sigma: density("sigma")?,
        },
        Some("uniform_impulse") => NoiseModel::UniformImpulse {
            density: density("density")?,
        },
        Some("burst") => NoiseModel::Burst {
            bursts: count("bursts")?,
            size: count("size")?,
        },
        _ => {
            return Err(err("noise 'model' must be \"salt_pepper\", \"gaussian\", \
                 \"uniform_impulse\" or \"burst\""))
        }
    };
    Ok(NoiseSegment { start_frame, noise })
}

// ---------------------------------------------------------------------------
// Encoding: JobResult / JobProgress -> JSON
// ---------------------------------------------------------------------------

/// Encodes a settled result as the `result` member of a status document.
///
/// Genotypes travel as their compact [`Genotype::encode`] byte strings — the
/// same 13 bytes the MicroBlaze would hold — so clients can
/// [`Genotype::decode`] them and byte-compare against local runs.
pub fn encode_result(result: &JobResult) -> Value {
    let mut pairs = vec![
        ("job_id", u64v(result.job_id)),
        ("seed", u64v(result.seed)),
        ("evaluations", u64v(result.evaluations)),
        (
            "stats",
            Value::object(vec![
                ("plans_evaluated", u64v(result.stats.plans_evaluated)),
                ("memo_hits", u64v(result.stats.memo_hits)),
                ("early_exits", u64v(result.stats.early_exits)),
            ]),
        ),
        ("warm_started", Value::Bool(result.warm_started)),
        (
            "warm_start_key",
            match &result.warm_start_key {
                Some(key) => Value::object(vec![
                    // A full-range u64: as a raw JSON number it would be
                    // rounded above 2^53 by double-based parsers (JS et al.),
                    // so it travels as a fixed-width hex string instead.
                    ("image_hash", strv(format!("{:016x}", key.image_hash))),
                    ("noise_class", u64v(u64::from(key.noise_class))),
                    ("arrays", usizev(key.arrays)),
                ]),
                None => Value::Null,
            },
        ),
    ];
    let output = match &result.output {
        JobOutput::Evolution { result, time } => Value::object(vec![
            ("type", strv("evolution")),
            ("best_genotype", bytesv(&result.best_genotype.encode())),
            ("best_fitness", u64v(result.best_fitness)),
            ("initial_fitness", u64v(result.initial_fitness)),
            (
                "history",
                Value::Array(result.history.iter().map(|&f| u64v(f)).collect()),
            ),
            ("generations_run", usizev(result.generations_run)),
            (
                "total_pe_reconfigurations",
                u64v(result.total_pe_reconfigurations),
            ),
            ("time", encode_time(time)),
        ]),
        JobOutput::Cascade(cascade) => Value::object(vec![
            ("type", strv("cascade")),
            (
                "stage_genotypes",
                Value::Array(
                    cascade
                        .stage_genotypes
                        .iter()
                        .map(|g| bytesv(&g.encode()))
                        .collect(),
                ),
            ),
            (
                "stage_fitness",
                Value::Array(cascade.stage_fitness.iter().map(|&f| u64v(f)).collect()),
            ),
        ]),
        JobOutput::FaultCampaign(report) => encode_campaign_report(report),
        JobOutput::Stream(report) => encode_stream_report(report),
        JobOutput::Failed(message) => Value::object(vec![
            ("type", strv("failed")),
            ("message", strv(message.as_str())),
        ]),
        JobOutput::Cancelled(kind) => Value::object(vec![
            ("type", strv("cancelled")),
            (
                "reason",
                strv(match kind {
                    CancelKind::Requested => "requested",
                    CancelKind::DeadlineExpired => "deadline_expired",
                }),
            ),
        ]),
    };
    pairs.push(("output", output));
    Value::object(pairs)
}

/// Encodes a stream report as the `output` member of a result document.
/// `output_hash` is a full-range u64, so like `image_hash` it travels as a
/// fixed-width hex string rather than a JSON number.
pub fn encode_stream_report(report: &StreamReport) -> Value {
    Value::object(vec![
        ("type", strv("stream")),
        ("frames", usizev(report.frames)),
        ("drift_events", usizev(report.drift_events)),
        (
            "adaptations_attempted",
            usizev(report.adaptations_attempted),
        ),
        ("adaptations_applied", usizev(report.adaptations_applied)),
        (
            "initial_fitness",
            match report.initial_fitness {
                Some(f) => u64v(f),
                None => Value::Null,
            },
        ),
        (
            "final_fitness",
            match report.final_fitness {
                Some(f) => u64v(f),
                None => Value::Null,
            },
        ),
        (
            "segments",
            Value::Array(
                report
                    .segments
                    .iter()
                    .map(|s| {
                        Value::object(vec![
                            ("start_frame", usizev(s.start_frame)),
                            ("frames", usizev(s.frames)),
                            ("fitness_sum", u64v(s.fitness_sum)),
                            ("mean_fitness", f64v(s.mean_fitness())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("final_genotype", bytesv(&report.final_genotype)),
        ("output_hash", strv(format!("{:016x}", report.output_hash))),
    ])
}

fn encode_time(time: &EvolutionTimeEstimate) -> Value {
    Value::object(vec![
        ("total_s", f64v(time.total_s)),
        ("reconfiguration_s", f64v(time.reconfiguration_s)),
        ("evaluation_s", f64v(time.evaluation_s)),
        ("generations", usizev(time.generations)),
        ("candidates", u64v(time.candidates)),
        ("pe_reconfigurations", u64v(time.pe_reconfigurations)),
    ])
}

// ---------------------------------------------------------------------------
// Campaign reports
// ---------------------------------------------------------------------------

fn encode_stats(stats: &EngineStats) -> Value {
    Value::object(vec![
        ("plans_evaluated", u64v(stats.plans_evaluated)),
        ("memo_hits", u64v(stats.memo_hits)),
        ("early_exits", u64v(stats.early_exits)),
    ])
}

fn decode_stats(value: &Value, name: &str) -> Result<EngineStats, WireError> {
    let counter = |field: &str| -> Result<u64, WireError> {
        value
            .get(field)
            .and_then(Value::as_u64)
            .ok_or_else(|| err(format!("'{name}' needs an integer '{field}'")))
    };
    Ok(EngineStats {
        plans_evaluated: counter("plans_evaluated")?,
        memo_hits: counter("memo_hits")?,
        early_exits: counter("early_exits")?,
    })
}

fn encode_planned_fault(fault: &PlannedFault) -> Value {
    let mut pairs = vec![
        ("row", usizev(fault.row)),
        ("col", usizev(fault.col)),
        (
            "kind",
            strv(match fault.kind {
                FaultKind::Seu => "seu",
                FaultKind::Lpd => "lpd",
            }),
        ),
    ];
    match fault.behaviour {
        FaultBehaviour::RandomOutput { seed } => {
            pairs.push(("behaviour", strv("random_output")));
            pairs.push(("behaviour_seed", u64v(seed)));
        }
        FaultBehaviour::StuckAt { value } => {
            pairs.push(("behaviour", strv("stuck_at")));
            pairs.push(("behaviour_value", u64v(u64::from(value))));
        }
        FaultBehaviour::InvertedOutput => pairs.push(("behaviour", strv("inverted_output"))),
    }
    Value::object(pairs)
}

fn decode_planned_fault(value: &Value) -> Result<PlannedFault, WireError> {
    let row = value
        .get("row")
        .and_then(Value::as_usize)
        .ok_or_else(|| err("fault needs an integer 'row'"))?;
    let col = value
        .get("col")
        .and_then(Value::as_usize)
        .ok_or_else(|| err("fault needs an integer 'col'"))?;
    let kind = match value.get("kind").and_then(Value::as_str) {
        Some("seu") => FaultKind::Seu,
        Some("lpd") => FaultKind::Lpd,
        _ => return Err(err("fault 'kind' must be \"seu\" or \"lpd\"")),
    };
    let behaviour = match value.get("behaviour").and_then(Value::as_str) {
        Some("random_output") => FaultBehaviour::RandomOutput {
            seed: value
                .get("behaviour_seed")
                .and_then(Value::as_u64)
                .ok_or_else(|| err("random_output faults need a 'behaviour_seed'"))?,
        },
        Some("stuck_at") => FaultBehaviour::StuckAt {
            value: value
                .get("behaviour_value")
                .and_then(Value::as_u64)
                .and_then(|n| u8::try_from(n).ok())
                .ok_or_else(|| err("stuck_at faults need a byte 'behaviour_value'"))?,
        },
        Some("inverted_output") => FaultBehaviour::InvertedOutput,
        _ => return Err(err("unknown fault 'behaviour'")),
    };
    Ok(PlannedFault {
        row,
        col,
        behaviour,
        kind,
    })
}

/// Encodes a campaign report as the `output` member of a result document:
/// the legacy `positions` view (single-PE sweeps), the generalised `events`
/// view (every other scenario kind), and the scenario/policy labels plus
/// aggregates a [`ResilienceReport`](ehw_platform::scenario::ResilienceReport)
/// row is built from.
pub fn encode_campaign_report(report: &CampaignReport) -> Value {
    Value::object(vec![
        ("type", strv("fault_campaign")),
        ("scenario", strv(report.scenario.as_str())),
        ("policy", strv(report.policy.as_str())),
        (
            "positions",
            Value::Array(
                report
                    .positions
                    .iter()
                    .map(|p| {
                        Value::object(vec![
                            ("array", usizev(p.array)),
                            ("row", usizev(p.row)),
                            ("col", usizev(p.col)),
                            ("fitness_clean", u64v(p.fitness_clean)),
                            ("fitness_faulty", u64v(p.fitness_faulty)),
                            ("fitness_recovered", u64v(p.fitness_recovered)),
                            ("evaluations", u64v(p.evaluations)),
                            ("stats", encode_stats(&p.stats)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "events",
            Value::Array(
                report
                    .events
                    .iter()
                    .map(|e| {
                        Value::object(vec![
                            ("tick", usizev(e.tick)),
                            ("array", usizev(e.array)),
                            (
                                "faults",
                                Value::Array(e.faults.iter().map(encode_planned_fault).collect()),
                            ),
                            ("fitness_clean", u64v(e.fitness_clean)),
                            ("fitness_faulty", u64v(e.fitness_faulty)),
                            ("fitness_recovered", u64v(e.fitness_recovered)),
                            ("evaluations", u64v(e.evaluations)),
                            ("stats", encode_stats(&e.stats)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("critical_positions", usizev(report.critical_positions())),
        (
            "fully_recovered_positions",
            usizev(report.fully_recovered_positions()),
        ),
        ("mean_recovery_ratio", f64v(report.mean_recovery_ratio())),
    ])
}

/// Decodes a `fault_campaign` output document back into a [`CampaignReport`]
/// — the client-side half of the codec, used to fold per-job HTTP results
/// into one [`ResilienceReport`](ehw_platform::scenario::ResilienceReport).
/// Lossless against [`encode_campaign_report`]: the round trip is
/// byte-identical (`PartialEq` on the report).
pub fn decode_campaign_report(value: &Value) -> Result<CampaignReport, WireError> {
    if value.get("type").and_then(Value::as_str) != Some("fault_campaign") {
        return Err(err("not a fault_campaign output"));
    }
    let label = |field: &str| -> Result<String, WireError> {
        value
            .get(field)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| err(format!("campaign output needs a string '{field}'")))
    };
    let positions = value
        .get("positions")
        .and_then(Value::as_array)
        .ok_or_else(|| err("campaign output needs a 'positions' array"))?
        .iter()
        .map(|p| {
            let number = |field: &str| -> Result<u64, WireError> {
                p.get(field)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| err(format!("position needs an integer '{field}'")))
            };
            Ok(PositionResult {
                array: number("array")? as usize,
                row: number("row")? as usize,
                col: number("col")? as usize,
                fitness_clean: number("fitness_clean")?,
                fitness_faulty: number("fitness_faulty")?,
                fitness_recovered: number("fitness_recovered")?,
                evaluations: number("evaluations")?,
                stats: decode_stats(
                    p.get("stats")
                        .ok_or_else(|| err("position needs 'stats'"))?,
                    "stats",
                )?,
            })
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    let events = value
        .get("events")
        .and_then(Value::as_array)
        .ok_or_else(|| err("campaign output needs an 'events' array"))?
        .iter()
        .map(|e| {
            let number = |field: &str| -> Result<u64, WireError> {
                e.get(field)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| err(format!("event needs an integer '{field}'")))
            };
            Ok(EventResult {
                tick: number("tick")? as usize,
                array: number("array")? as usize,
                faults: e
                    .get("faults")
                    .and_then(Value::as_array)
                    .ok_or_else(|| err("event needs a 'faults' array"))?
                    .iter()
                    .map(decode_planned_fault)
                    .collect::<Result<Vec<_>, WireError>>()?,
                fitness_clean: number("fitness_clean")?,
                fitness_faulty: number("fitness_faulty")?,
                fitness_recovered: number("fitness_recovered")?,
                evaluations: number("evaluations")?,
                stats: decode_stats(
                    e.get("stats").ok_or_else(|| err("event needs 'stats'"))?,
                    "stats",
                )?,
            })
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(CampaignReport {
        scenario: label("scenario")?,
        policy: label("policy")?,
        positions,
        events,
    })
}

// ---------------------------------------------------------------------------
// Scenario / policy registry
// ---------------------------------------------------------------------------

fn encode_filter(filter: &TargetFilter) -> Value {
    match filter {
        TargetFilter::All => Value::object(vec![("type", strv("all"))]),
        TargetFilter::Rows(rows) => Value::object(vec![
            ("type", strv("rows")),
            (
                "rows",
                Value::Array(rows.iter().map(|&r| usizev(r)).collect()),
            ),
        ]),
        TargetFilter::Cols(cols) => Value::object(vec![
            ("type", strv("cols")),
            (
                "cols",
                Value::Array(cols.iter().map(|&c| usizev(c)).collect()),
            ),
        ]),
        TargetFilter::Positions(positions) => Value::object(vec![
            ("type", strv("positions")),
            (
                "positions",
                Value::Array(
                    positions
                        .iter()
                        .map(|&(r, c)| Value::Array(vec![usizev(r), usizev(c)]))
                        .collect(),
                ),
            ),
        ]),
    }
}

fn decode_filter(value: &Value) -> Result<TargetFilter, WireError> {
    let indices = |field: &str| -> Result<Vec<usize>, WireError> {
        value
            .get(field)
            .and_then(Value::as_array)
            .ok_or_else(|| err(format!("filter needs a '{field}' array")))?
            .iter()
            .map(|v| {
                v.as_usize()
                    .ok_or_else(|| err(format!("'{field}' entries must be non-negative integers")))
            })
            .collect()
    };
    match value.get("type").and_then(Value::as_str) {
        Some("all") => Ok(TargetFilter::All),
        Some("rows") => Ok(TargetFilter::Rows(indices("rows")?)),
        Some("cols") => Ok(TargetFilter::Cols(indices("cols")?)),
        Some("positions") => Ok(TargetFilter::Positions(
            value
                .get("positions")
                .and_then(Value::as_array)
                .ok_or_else(|| err("filter needs a 'positions' array"))?
                .iter()
                .map(|pair| {
                    let pair = pair
                        .as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| err("'positions' entries must be [row, col] pairs"))?;
                    let row = pair[0]
                        .as_usize()
                        .ok_or_else(|| err("'positions' rows must be non-negative integers"))?;
                    let col = pair[1]
                        .as_usize()
                        .ok_or_else(|| err("'positions' cols must be non-negative integers"))?;
                    Ok((row, col))
                })
                .collect::<Result<Vec<_>, WireError>>()?,
        )),
        _ => Err(err(
            "filter 'type' must be \"all\", \"rows\", \"cols\" or \"positions\"",
        )),
    }
}

fn encode_scenario(scenario: &FaultScenario) -> Value {
    let mut pairs = vec![
        ("name", strv(scenario.name.as_str())),
        ("kind", strv(scenario.kind.tag())),
    ];
    match &scenario.kind {
        ScenarioKind::SingleSweep | ScenarioKind::PermanentLpd => {}
        ScenarioKind::MultiPe { k } => pairs.push(("k", usizev(*k))),
        ScenarioKind::Correlated { shape } => pairs.push(("shape", strv(shape.tag()))),
        ScenarioKind::Burst { rate, width } => {
            pairs.push(("rate", f64v(*rate)));
            pairs.push(("width", usizev(*width)));
        }
        ScenarioKind::RateSweep { rates } => pairs.push((
            "rates",
            Value::Array(rates.iter().map(|&r| f64v(r)).collect()),
        )),
        ScenarioKind::Storm { schedule } => pairs.push((
            "schedule",
            Value::Array(
                schedule
                    .iter()
                    .map(|phase| {
                        Value::object(vec![
                            ("ticks", usizev(phase.ticks)),
                            ("rate", f64v(phase.rate)),
                        ])
                    })
                    .collect(),
            ),
        )),
    }
    pairs.push(("filter", encode_filter(&scenario.filter)));
    pairs.push(("stream", u64v(scenario.stream)));
    Value::object(pairs)
}

fn decode_scenario(value: &Value) -> Result<FaultScenario, WireError> {
    let name = value
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| err("scenario needs a string 'name'"))?;
    let rate = |field: &str| -> Result<f64, WireError> {
        value
            .get(field)
            .and_then(Value::as_f64)
            .ok_or_else(|| err(format!("scenario '{name}' needs a number '{field}'")))
    };
    let kind = match value.get("kind").and_then(Value::as_str) {
        Some("single_sweep") => ScenarioKind::SingleSweep,
        Some("permanent_lpd") => ScenarioKind::PermanentLpd,
        Some("multi_pe") => ScenarioKind::MultiPe {
            k: value
                .get("k")
                .and_then(Value::as_usize)
                .ok_or_else(|| err(format!("scenario '{name}' needs an integer 'k'")))?,
        },
        Some("correlated") => ScenarioKind::Correlated {
            shape: match value.get("shape").and_then(Value::as_str) {
                Some("row") => CorrelationShape::Row,
                Some("col") => CorrelationShape::Col,
                Some("neighborhood") => CorrelationShape::Neighborhood,
                _ => {
                    return Err(err(format!(
                        "scenario '{name}' 'shape' must be \"row\", \"col\" or \"neighborhood\""
                    )))
                }
            },
        },
        Some("burst") => ScenarioKind::Burst {
            rate: rate("rate")?,
            width: value
                .get("width")
                .and_then(Value::as_usize)
                .ok_or_else(|| err(format!("scenario '{name}' needs an integer 'width'")))?,
        },
        Some("rate_sweep") => ScenarioKind::RateSweep {
            rates: value
                .get("rates")
                .and_then(Value::as_array)
                .ok_or_else(|| err(format!("scenario '{name}' needs a 'rates' array")))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| err(format!("scenario '{name}' rates must be numbers")))
                })
                .collect::<Result<Vec<_>, WireError>>()?,
        },
        Some("storm") => ScenarioKind::Storm {
            schedule: value
                .get("schedule")
                .and_then(Value::as_array)
                .ok_or_else(|| err(format!("scenario '{name}' needs a 'schedule' array")))?
                .iter()
                .map(|phase| {
                    Ok(StormPhase {
                        ticks: phase
                            .get("ticks")
                            .and_then(Value::as_usize)
                            .ok_or_else(|| err("storm phases need an integer 'ticks'"))?,
                        rate: phase
                            .get("rate")
                            .and_then(Value::as_f64)
                            .ok_or_else(|| err("storm phases need a number 'rate'"))?,
                    })
                })
                .collect::<Result<Vec<_>, WireError>>()?,
        },
        _ => return Err(err(format!("scenario '{name}' has an unknown 'kind'"))),
    };
    let mut scenario = FaultScenario::new(name, kind);
    if let Some(filter) = value.get("filter") {
        scenario = scenario.with_filter(decode_filter(filter)?);
    }
    if let Some(stream) = value.get("stream") {
        scenario = scenario.with_stream(
            stream
                .as_u64()
                .ok_or_else(|| err(format!("scenario '{name}' 'stream' must be an integer")))?,
        );
    }
    scenario
        .validate()
        .map_err(|reason| err(format!("scenario '{name}': {reason}")))?;
    Ok(scenario)
}

fn encode_policy(name: &str, policy: &RecoveryPolicy) -> Value {
    Value::object(vec![
        ("name", strv(name)),
        ("label", strv(policy.describe())),
        (
            "steps",
            Value::Array(
                policy
                    .steps
                    .iter()
                    .map(|step| match step {
                        RecoveryStep::Scrub { attempts } => Value::object(vec![
                            ("step", strv("scrub")),
                            ("attempts", usizev(*attempts)),
                        ]),
                        RecoveryStep::TmrRemap => Value::object(vec![("step", strv("tmr_remap"))]),
                        RecoveryStep::Reevolve {
                            generations,
                            max_millis,
                        } => Value::object(vec![
                            ("step", strv("reevolve")),
                            (
                                "generations",
                                match generations {
                                    Some(g) => usizev(*g),
                                    None => Value::Null,
                                },
                            ),
                            (
                                "max_millis",
                                match max_millis {
                                    Some(ms) => u64v(*ms),
                                    None => Value::Null,
                                },
                            ),
                        ]),
                    })
                    .collect(),
            ),
        ),
        (
            "stop_margin",
            match policy.stop_margin {
                Some(margin) => u64v(margin),
                None => Value::Null,
            },
        ),
    ])
}

fn decode_policy(value: &Value) -> Result<(String, RecoveryPolicy), WireError> {
    let name = value
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| err("policy needs a string 'name'"))?;
    let steps = value
        .get("steps")
        .and_then(Value::as_array)
        .ok_or_else(|| err(format!("policy '{name}' needs a 'steps' array")))?
        .iter()
        .map(|step| match step.get("step").and_then(Value::as_str) {
            Some("scrub") => Ok(RecoveryStep::Scrub {
                attempts: step.get("attempts").and_then(Value::as_usize).unwrap_or(1),
            }),
            Some("tmr_remap") => Ok(RecoveryStep::TmrRemap),
            Some("reevolve") => Ok(RecoveryStep::Reevolve {
                generations: match step.get("generations") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(v.as_usize().ok_or_else(|| {
                        err(format!(
                            "policy '{name}' reevolve 'generations' must be an integer or null"
                        ))
                    })?),
                },
                max_millis: match step.get("max_millis") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(v.as_u64().ok_or_else(|| {
                        err(format!(
                            "policy '{name}' reevolve 'max_millis' must be an integer or null"
                        ))
                    })?),
                },
            }),
            _ => Err(err(format!(
                "policy '{name}' steps must be \"scrub\", \"tmr_remap\" or \"reevolve\""
            ))),
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    let stop_margin = match value.get("stop_margin") {
        None | Some(Value::Null) => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            err(format!(
                "policy '{name}' 'stop_margin' must be an integer or null"
            ))
        })?),
    };
    let policy = RecoveryPolicy { steps, stop_margin };
    policy
        .validate()
        .map_err(|reason| err(format!("policy '{name}': {reason}")))?;
    Ok((name.to_string(), policy))
}

/// Encodes the full registry as the `GET /registry` document:
/// `{"scenarios": [...], "policies": [...]}`, each entry carrying its
/// name plus enough structure for a client to reproduce the schedule
/// locally.
pub fn encode_registry(registry: &ScenarioRegistry) -> Value {
    Value::object(vec![
        (
            "scenarios",
            Value::Array(registry.scenarios().iter().map(encode_scenario).collect()),
        ),
        (
            "policies",
            Value::Array(
                registry
                    .policies()
                    .iter()
                    .map(|(name, policy)| encode_policy(name, policy))
                    .collect(),
            ),
        ),
    ])
}

/// Parses a registry document (same shape [`encode_registry`] emits) as an
/// overlay on the built-in entries: named scenarios/policies are added, or
/// replace builtins of the same name.  Every entry is validated — a
/// malformed scenario or ladder rejects the whole document, so a server
/// never starts with a half-usable registry.
pub fn parse_registry(doc: &Value) -> Result<ScenarioRegistry, WireError> {
    let mut registry = ScenarioRegistry::builtin();
    if let Some(scenarios) = doc.get("scenarios") {
        for value in scenarios
            .as_array()
            .ok_or_else(|| err("'scenarios' must be an array"))?
        {
            registry.insert_scenario(decode_scenario(value)?);
        }
    }
    if let Some(policies) = doc.get("policies") {
        for value in policies
            .as_array()
            .ok_or_else(|| err("'policies' must be an array"))?
        {
            let (name, policy) = decode_policy(value)?;
            registry.insert_policy(name, policy);
        }
    }
    Ok(registry)
}

// ---------------------------------------------------------------------------
// Champion persistence: the `--champions=FILE` document
// ---------------------------------------------------------------------------

/// File-format version of the champions document; bumped on incompatible
/// shape changes so an old server refuses a new file instead of misreading
/// it.
pub const CHAMPIONS_VERSION: u64 = 1;

/// Encodes an exported champion snapshot as the `--champions=FILE` document:
///
/// ```json
/// {"version": 1,
///  "champions": [{"image_hash": "00cafe..15 more hex", "noise_class": 1,
///                 "arrays": 1, "genotype": [..bytes..], "fitness": 1234}]}
/// ```
///
/// Entries are in deposit order (see `ChampionLibrary::snapshot`), and
/// `image_hash` travels as a fixed-width hex string because it is a
/// full-range u64 (same reasoning as the result envelope's `image_hash`).
pub fn encode_champions(entries: &[(ChampionKey, Champion)]) -> Value {
    Value::object(vec![
        ("version", u64v(CHAMPIONS_VERSION)),
        (
            "champions",
            Value::Array(
                entries
                    .iter()
                    .map(|(key, champion)| {
                        Value::object(vec![
                            ("image_hash", strv(format!("{:016x}", key.image_hash))),
                            ("noise_class", u64v(u64::from(key.noise_class))),
                            ("arrays", usizev(key.arrays)),
                            ("genotype", bytesv(&champion.genotype)),
                            ("fitness", u64v(champion.fitness)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses a champions document (same shape [`encode_champions`] emits) back
/// into deposit-ordered entries.  Every entry is validated — one malformed
/// champion rejects the whole document, so a server never starts with a
/// half-restored library.
pub fn parse_champions(doc: &Value) -> Result<Vec<(ChampionKey, Champion)>, WireError> {
    let version = doc
        .get("version")
        .and_then(Value::as_u64)
        .ok_or_else(|| err("champions file needs an integer 'version'"))?;
    if version != CHAMPIONS_VERSION {
        return Err(err(format!(
            "champions file version {version} is not the supported version {CHAMPIONS_VERSION}"
        )));
    }
    doc.get("champions")
        .and_then(Value::as_array)
        .ok_or_else(|| err("champions file needs a 'champions' array"))?
        .iter()
        .enumerate()
        .map(|(index, entry)| {
            let fail = |what: &str| err(format!("champion #{index}: {what}"));
            let image_hash = entry
                .get("image_hash")
                .and_then(Value::as_str)
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .ok_or_else(|| fail("'image_hash' must be a u64 hex string"))?;
            let noise_class = entry
                .get("noise_class")
                .and_then(Value::as_u64)
                .and_then(|n| u8::try_from(n).ok())
                .ok_or_else(|| fail("'noise_class' must be an integer in 0..=255"))?;
            let arrays = entry
                .get("arrays")
                .and_then(Value::as_usize)
                .filter(|&n| n > 0)
                .ok_or_else(|| fail("'arrays' must be a positive integer"))?;
            let genotype = decode_bytes(
                entry
                    .get("genotype")
                    .ok_or_else(|| fail("missing 'genotype'"))?,
                "genotype",
            )
            .map_err(|e| fail(&e.0))?;
            if genotype.is_empty() {
                return Err(fail("'genotype' must not be empty"));
            }
            let fitness = entry
                .get("fitness")
                .and_then(Value::as_u64)
                .ok_or_else(|| fail("'fitness' must be an integer"))?;
            Ok((
                ChampionKey {
                    image_hash,
                    noise_class,
                    arrays,
                },
                Champion { genotype, fitness },
            ))
        })
        .collect()
}

/// Encodes one progress event as a single NDJSON line (no trailing newline).
/// Stream jobs additionally carry a `stream` member tagging the phase
/// (`frame`, `drift` or `adaptation`) with its per-phase fields.
pub fn encode_event(sequence: usize, event: &JobProgress) -> Value {
    let mut pairs = vec![
        ("sequence", usizev(sequence)),
        ("generation", usizev(event.generation)),
        (
            "best_fitness",
            match event.best_fitness {
                Some(f) => u64v(f),
                None => Value::Null,
            },
        ),
    ];
    if let Some(stream) = &event.stream {
        pairs.push(("stream", encode_stream_event(stream)));
    }
    Value::object(pairs)
}

fn encode_stream_event(event: &StreamEvent) -> Value {
    match *event {
        StreamEvent::Frame { index, fitness } => Value::object(vec![
            ("phase", strv("frame")),
            ("frame", usizev(index)),
            ("fitness", u64v(fitness)),
        ]),
        StreamEvent::Drift {
            frame,
            window_fitness,
            baseline_fitness,
        } => Value::object(vec![
            ("phase", strv("drift")),
            ("frame", usizev(frame)),
            ("window_fitness", u64v(window_fitness)),
            ("baseline_fitness", u64v(baseline_fitness)),
        ]),
        StreamEvent::Adaptation {
            frame,
            index,
            accepted,
            incumbent_fitness,
            candidate_fitness,
            generations_run,
        } => Value::object(vec![
            ("phase", strv("adaptation")),
            ("frame", usizev(frame)),
            ("adaptation", usizev(index)),
            ("accepted", Value::Bool(accepted)),
            ("incumbent_fitness", u64v(incumbent_fitness)),
            ("candidate_fitness", u64v(candidate_fitness)),
            ("generations_run", usizev(generations_run)),
        ]),
    }
}

/// Encodes an error payload (`{"error": ...}`).
pub fn encode_error(message: impl Into<String>) -> Value {
    Value::object(vec![("error", strv(message))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn image_doc(width: usize, height: usize) -> String {
        let pixels: Vec<String> = (0..width * height)
            .map(|i| ((i * 37) % 256).to_string())
            .collect();
        format!(
            "{{\"width\":{width},\"height\":{height},\"pixels\":[{}]}}",
            pixels.join(",")
        )
    }

    #[test]
    fn evolution_specs_decode_through_the_builder() {
        let doc = parse(&format!(
            "{{\"kind\":\"evolution\",\"input\":{img},\"reference\":{img},\
             \"generations\":7,\"offspring\":5,\"mutation_rate\":2,\"seed\":42,\
             \"priority\":\"high\",\"deadline_ms\":1500}}",
            img = image_doc(8, 8)
        ))
        .unwrap();
        let (spec, options) = decode_spec(&doc).unwrap();
        assert_eq!(spec.kind(), "evolution");
        assert_eq!(spec.seed(), Some(42));
        assert_eq!(options.priority, Priority::High);
        assert_eq!(
            options.deadline,
            Some(std::time::Duration::from_millis(1500))
        );
    }

    #[test]
    fn builder_validation_errors_surface_as_wire_errors() {
        let doc = parse(&format!(
            "{{\"kind\":\"evolution\",\"input\":{img},\"reference\":{img},\"offspring\":0}}",
            img = image_doc(4, 4)
        ))
        .unwrap();
        let error = decode_spec(&doc).unwrap_err();
        assert!(error.0.contains("invalid spec"), "{error}");
    }

    #[test]
    fn image_shape_mismatches_are_rejected() {
        let doc = parse(
            "{\"kind\":\"evolution\",\
             \"input\":{\"width\":3,\"height\":3,\"pixels\":[1,2,3]},\
             \"reference\":{\"width\":3,\"height\":3,\"pixels\":[1,2,3]}}",
        )
        .unwrap();
        let error = decode_spec(&doc).unwrap_err();
        assert!(error.0.contains("pixels"), "{error}");
    }

    #[test]
    fn unknown_kinds_are_rejected() {
        let doc = parse(&format!(
            "{{\"kind\":\"teleport\",\"input\":{img},\"reference\":{img}}}",
            img = image_doc(4, 4)
        ))
        .unwrap();
        assert!(decode_spec(&doc)
            .unwrap_err()
            .0
            .contains("unknown job kind"));
    }

    #[test]
    fn genotypes_in_results_round_trip_through_their_byte_encoding() {
        use ehw_platform::jobs::execute;
        use ehw_platform::EhwPlatform;

        let input = GrayImage::from_vec(8, 8, (0..64).map(|i| (i * 3) as u8).collect());
        let reference = GrayImage::from_vec(8, 8, (0..64).map(|i| (i * 5) as u8).collect());
        let spec = JobSpec::evolution(input, reference)
            .generations(3)
            .seed(7)
            .build()
            .unwrap();
        let mut platform = EhwPlatform::new(spec.arrays_needed());
        let result = execute(&mut platform, &spec, 7);
        let encoded = encode_result(&result);
        let bytes = decode_bytes(
            encoded.get("output").unwrap().get("best_genotype").unwrap(),
            "best_genotype",
        )
        .unwrap();
        let decoded = Genotype::decode(&bytes).unwrap();
        assert_eq!(&decoded, result.best_genotype().unwrap());
    }

    fn test_image(width: usize, height: usize) -> GrayImage {
        GrayImage::from_vec(
            width,
            height,
            (0..width * height)
                .map(|i| ((i * 37) % 256) as u8)
                .collect(),
        )
    }

    #[test]
    fn base64_pgm_bodies_decode_to_the_same_image_as_pixel_arrays() {
        let image = test_image(8, 8);
        let pgm = crate::base64::encode(&ehw_image::pgm::encode_p5(&image));
        let doc = parse(&format!(
            "{{\"kind\":\"evolution\",\
             \"input\":{{\"pgm_base64\":\"{pgm}\"}},\
             \"reference\":{{\"pgm_base64\":\"{pgm}\"}},\
             \"generations\":2,\"seed\":9}}"
        ))
        .unwrap();
        let (spec, _) = decode_spec(&doc).unwrap();
        assert_eq!(spec.kind(), "evolution");

        // The compact body is the point: for this image the base64 PGM is
        // roughly 3x smaller than the JSON pixel-array encoding.
        let json_pixels = image_doc(8, 8).len();
        let base64_body = format!("{{\"pgm_base64\":\"{pgm}\"}}").len();
        assert!(
            json_pixels as f64 / base64_body as f64 > 2.0,
            "expected a compact transport: {json_pixels} vs {base64_body}"
        );
    }

    #[test]
    fn malformed_base64_images_are_rejected_with_the_field_name() {
        let doc = parse(
            "{\"kind\":\"evolution\",\
             \"input\":{\"pgm_base64\":\"!!!\"},\
             \"reference\":{\"pgm_base64\":\"!!!\"}}",
        )
        .unwrap();
        let error = decode_spec(&doc).unwrap_err();
        assert!(error.0.contains("input.pgm_base64"), "{error}");
    }

    #[test]
    fn campaign_reports_round_trip_through_the_wire_codec() {
        use ehw_evolution::fitness::EngineStats;
        use ehw_platform::fault_campaign::{EventResult, PositionResult};

        let report = CampaignReport {
            scenario: "burst".to_string(),
            policy: "scrub+reevolve@0".to_string(),
            positions: vec![PositionResult {
                array: 0,
                row: 1,
                col: 2,
                fitness_clean: 10,
                fitness_faulty: 90,
                fitness_recovered: 12,
                evaluations: 7,
                stats: EngineStats {
                    plans_evaluated: 5,
                    memo_hits: 1,
                    early_exits: 2,
                },
            }],
            events: vec![EventResult {
                tick: 3,
                array: 1,
                faults: vec![
                    PlannedFault {
                        row: 0,
                        col: 3,
                        behaviour: FaultBehaviour::RandomOutput { seed: 77 },
                        kind: FaultKind::Seu,
                    },
                    PlannedFault {
                        row: 2,
                        col: 1,
                        behaviour: FaultBehaviour::StuckAt { value: 0 },
                        kind: FaultKind::Lpd,
                    },
                    PlannedFault {
                        row: 3,
                        col: 3,
                        behaviour: FaultBehaviour::InvertedOutput,
                        kind: FaultKind::Seu,
                    },
                ],
                fitness_clean: 4,
                fitness_faulty: 40,
                fitness_recovered: 4,
                evaluations: 3,
                stats: EngineStats::default(),
            }],
        };
        let decoded = decode_campaign_report(&encode_campaign_report(&report)).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn the_builtin_registry_round_trips_through_its_json_document() {
        let registry = ScenarioRegistry::builtin();
        let doc = encode_registry(&registry);
        let parsed = parse_registry(&parse(&doc.to_json()).unwrap()).unwrap();
        assert_eq!(
            parsed
                .scenarios()
                .iter()
                .map(|s| &s.name)
                .collect::<Vec<_>>(),
            registry
                .scenarios()
                .iter()
                .map(|s| &s.name)
                .collect::<Vec<_>>()
        );
        for (name, policy) in registry.policies() {
            assert_eq!(parsed.policy(name).unwrap(), policy);
        }
        for scenario in registry.scenarios() {
            assert_eq!(parsed.scenario(&scenario.name).unwrap(), scenario);
        }
    }

    #[test]
    fn campaign_specs_resolve_scenario_and_policy_names_from_the_registry() {
        let doc = parse(&format!(
            "{{\"kind\":\"fault_campaign\",\"input\":{img},\"reference\":{img},\
             \"scenario\":\"burst\",\"policy\":\"scrub_then_reevolve\",\
             \"recovery_generations\":2,\"seed\":11}}",
            img = image_doc(8, 8)
        ))
        .unwrap();
        let (spec, _) = decode_spec_with(&doc, &ScenarioRegistry::builtin()).unwrap();
        let JobSpec::FaultCampaign(campaign) = &spec else {
            panic!("expected a fault campaign spec");
        };
        assert_eq!(campaign.scenario().name, "burst");
        assert_eq!(campaign.policy().describe(), "scrub+reevolve@0");
    }

    #[test]
    fn unknown_scenario_and_policy_names_are_structured_errors() {
        for (field, needle) in [
            ("\"scenario\":\"meteor\"", "unknown fault scenario 'meteor'"),
            ("\"policy\":\"prayer\"", "unknown recovery policy 'prayer'"),
        ] {
            let doc = parse(&format!(
                "{{\"kind\":\"fault_campaign\",\"input\":{img},\"reference\":{img},{field}}}",
                img = image_doc(8, 8)
            ))
            .unwrap();
            let error = decode_spec(&doc).unwrap_err();
            assert!(error.0.contains(needle), "{error}");
            assert!(error.0.contains("/registry"), "{error}");
        }
    }

    #[test]
    fn registry_files_overlay_the_builtins_and_reject_malformed_entries() {
        let doc = parse(
            "{\"scenarios\":[{\"name\":\"row_zero\",\"kind\":\"correlated\",\
              \"shape\":\"row\",\"filter\":{\"type\":\"rows\",\"rows\":[0]},\"stream\":3}],\
             \"policies\":[{\"name\":\"gentle\",\"steps\":[{\"step\":\"scrub\",\"attempts\":2},\
              {\"step\":\"reevolve\",\"generations\":4}],\"stop_margin\":1}]}",
        )
        .unwrap();
        let registry = parse_registry(&doc).unwrap();
        // Builtins survive the overlay...
        assert!(registry.scenario("single_sweep").is_ok());
        assert!(registry.policy("full_ladder").is_ok());
        // ...and the file's entries resolve.
        let scenario = registry.scenario("row_zero").unwrap();
        assert_eq!(scenario.stream, 3);
        assert_eq!(
            registry.policy("gentle").unwrap().describe(),
            "scrub(2)+reevolve(4)@1"
        );

        // A malformed ladder rejects the whole document.
        let bad = parse(
            "{\"policies\":[{\"name\":\"broken\",\"steps\":[{\"step\":\"scrub\",\"attempts\":0}]}]}",
        )
        .unwrap();
        let error = parse_registry(&bad).unwrap_err();
        assert!(error.0.contains("broken"), "{error}");

        // So does a geometrically impossible scenario.
        let bad =
            parse("{\"scenarios\":[{\"name\":\"huge\",\"kind\":\"multi_pe\",\"k\":0}]}").unwrap();
        let error = parse_registry(&bad).unwrap_err();
        assert!(error.0.contains("huge"), "{error}");
    }

    #[test]
    fn champions_round_trip_through_their_file_document() {
        let entries = vec![
            (
                ChampionKey {
                    image_hash: u64::MAX - 3, // full-range: must survive the hex hop
                    noise_class: 1,
                    arrays: 2,
                },
                Champion {
                    genotype: vec![1, 2, 3],
                    fitness: 42,
                },
            ),
            (
                ChampionKey {
                    image_hash: 7,
                    noise_class: 0,
                    arrays: 1,
                },
                Champion {
                    genotype: vec![9],
                    fitness: 0,
                },
            ),
        ];
        let doc = encode_champions(&entries);
        let reparsed = parse_champions(&parse(&doc.to_json()).unwrap()).unwrap();
        assert_eq!(reparsed, entries);

        // A wrong version or one malformed entry rejects the whole file.
        let bad = parse("{\"version\":2,\"champions\":[]}").unwrap();
        assert!(parse_champions(&bad).unwrap_err().0.contains("version"));
        let bad = parse(
            "{\"version\":1,\"champions\":[{\"image_hash\":\"zz\",\
             \"noise_class\":1,\"arrays\":1,\"genotype\":[1],\"fitness\":1}]}",
        )
        .unwrap();
        assert!(parse_champions(&bad).unwrap_err().0.contains("champion #0"));
    }

    fn stream_doc() -> String {
        "{\"kind\":\"stream\",\
         \"source\":{\"type\":\"synthetic\",\"scene\":\"shapes\",\"complexity\":4,\
           \"width\":16,\"height\":16,\"frames\":10,\
           \"schedule\":[\
             {\"start_frame\":0,\"noise\":{\"model\":\"salt_pepper\",\"density\":0.1}},\
             {\"start_frame\":6,\"noise\":{\"model\":\"gaussian\",\"sigma\":25.0}}]},\
         \"drift_window\":3,\"drift_threshold_pct\":140,\"drift_cooldown\":4,\
         \"offspring\":5,\"generations\":8,\"max_millis\":2000,\
         \"warm_start\":true,\"seed\":42}"
            .to_string()
    }

    #[test]
    fn stream_specs_decode_through_the_builder() {
        let doc = parse(&stream_doc()).unwrap();
        let (spec, _) = decode_spec(&doc).unwrap();
        assert_eq!(spec.kind(), "stream");
        assert_eq!(spec.seed(), Some(42));
        let JobSpec::Stream(stream) = &spec else {
            panic!("expected a stream spec");
        };
        assert_eq!(stream.drift().window, 3);
        assert_eq!(stream.drift().threshold_pct, 140);
        assert_eq!(stream.drift().cooldown, 4);
        assert_eq!(stream.adaptation().offspring, 5);
        assert_eq!(stream.adaptation().generations, 8);
        assert_eq!(stream.adaptation().max_millis, Some(2000));
        assert!(stream.warm_start());
    }

    #[test]
    fn malformed_stream_sources_are_rejected_with_context() {
        for (patch, needle) in [
            (
                "\"source\":{\"type\":\"synthetic\",\"scene\":\"shapes\",\"complexity\":4,\
                 \"width\":16,\"height\":16,\"frames\":10,\"schedule\":[]}",
                "schedule",
            ),
            (
                "\"source\":{\"type\":\"synthetic\",\"scene\":\"moire\",\
                 \"width\":16,\"height\":16,\"frames\":10,\
                 \"schedule\":[{\"start_frame\":0,\
                   \"noise\":{\"model\":\"salt_pepper\",\"density\":0.1}}]}",
                "scene",
            ),
            (
                "\"source\":{\"type\":\"webcam\"}",
                "must be \"synthetic\" or \"pgm_dir\"",
            ),
        ] {
            let doc = parse(&format!("{{\"kind\":\"stream\",{patch},\"seed\":1}}")).unwrap();
            let error = decode_spec(&doc).unwrap_err();
            assert!(error.0.contains(needle), "{patch} -> {error}");
        }
    }

    #[test]
    fn stream_results_and_events_carry_their_stream_members() {
        use ehw_platform::jobs::execute;
        use ehw_platform::EhwPlatform;

        let doc = parse(&stream_doc()).unwrap();
        let (spec, _) = decode_spec(&doc).unwrap();
        let mut platform = EhwPlatform::new(spec.arrays_needed());
        let result = execute(&mut platform, &spec, 42);
        let report = result.as_stream().expect("stream output").clone();

        let encoded = encode_result(&result);
        let output = encoded.get("output").unwrap();
        assert_eq!(output.get("type").and_then(Value::as_str), Some("stream"));
        assert_eq!(
            output.get("frames").and_then(Value::as_u64),
            Some(report.frames as u64)
        );
        assert_eq!(
            output.get("drift_events").and_then(Value::as_u64),
            Some(report.drift_events as u64)
        );
        assert_eq!(
            output.get("final_fitness").and_then(Value::as_u64),
            report.final_fitness
        );
        let segments = output.get("segments").and_then(Value::as_array).unwrap();
        assert_eq!(segments.len(), report.segments.len());
        let hash = output.get("output_hash").and_then(Value::as_str).unwrap();
        assert_eq!(hash, format!("{:016x}", report.output_hash));

        let frame = StreamEvent::Frame {
            index: 4,
            fitness: 123,
        };
        let event = JobProgress {
            generation: 4,
            best_fitness: Some(123),
            stream: Some(frame),
        };
        let line = encode_event(4, &event);
        let member = line.get("stream").expect("stream member");
        assert_eq!(member.get("phase").and_then(Value::as_str), Some("frame"));
        assert_eq!(member.get("frame").and_then(Value::as_u64), Some(4));
        assert_eq!(member.get("fitness").and_then(Value::as_u64), Some(123));
    }
}
