//! Integration suite: the job API exercised over a real socket.
//!
//! Every test binds an ephemeral port (`127.0.0.1:0`) and talks to the
//! server with a hand-rolled HTTP client — the same nothing-but-std
//! discipline as the server, so the suite also cross-checks the protocol
//! from the other side of the wire.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ehw_image::GrayImage;
use ehw_server::json::{parse, Value};
use ehw_server::wire::encode_result;
use ehw_server::EhwServer;
use ehw_service::{EhwService, JobSpec, ServiceConfig};

// ---------------------------------------------------------------------------
// A tiny test client
// ---------------------------------------------------------------------------

struct Response {
    status: u16,
    body: String,
}

impl Response {
    fn json(&self) -> Value {
        parse(&self.body).unwrap_or_else(|e| panic!("bad JSON body: {e}\n{}", self.body))
    }
}

/// Sends one raw request and reads the whole response (the server closes
/// the connection after each exchange).
fn raw_request(addr: std::net::SocketAddr, request: &[u8]) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("response is UTF-8");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body separator in: {text}"));
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .unwrap_or_else(|| panic!("no status in: {head}"));
    Response {
        status,
        body: body.to_string(),
    }
}

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: Option<&str>) -> Response {
    let payload = body.unwrap_or("");
    // This one-shot client reads to EOF, so it must opt out of keep-alive.
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        payload.len()
    );
    raw_request(addr, format!("{head}{payload}").as_bytes())
}

fn get(addr: std::net::SocketAddr, path: &str) -> Response {
    request(addr, "GET", path, None)
}

/// Polls `GET /jobs/:id` until the status leaves the pending states.
fn wait_settled(addr: std::net::SocketAddr, job_id: u64) -> Value {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let response = get(addr, &format!("/jobs/{job_id}"));
        assert_eq!(response.status, 200, "{}", response.body);
        let doc = response.json();
        let status = doc.get("status").unwrap().as_str().unwrap().to_string();
        if status != "queued" && status != "running" {
            return doc;
        }
        assert!(Instant::now() < deadline, "job {job_id} never settled");
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

fn start_server(platforms: usize) -> EhwServer {
    let service = EhwService::new(ServiceConfig::new(platforms).seed(11)).expect("service starts");
    EhwServer::serve(service, "127.0.0.1:0").expect("server binds")
}

fn training_pair(size: usize) -> (GrayImage, GrayImage) {
    let input = GrayImage::from_vec(
        size,
        size,
        (0..size * size)
            .map(|i| {
                if (i / size + i % size).is_multiple_of(2) {
                    230
                } else {
                    25
                }
            })
            .collect(),
    );
    let reference = GrayImage::from_vec(
        size,
        size,
        (0..size * size)
            .map(|i| (i * 255 / (size * size)) as u8)
            .collect(),
    );
    (input, reference)
}

fn image_json(img: &GrayImage) -> String {
    let pixels: Vec<String> = img.pixels().map(|p| p.to_string()).collect();
    format!(
        "{{\"width\":{},\"height\":{},\"pixels\":[{}]}}",
        img.width(),
        img.height(),
        pixels.join(",")
    )
}

fn evolution_body(size: usize, generations: usize, seed: u64, extra: &str) -> String {
    let (input, reference) = training_pair(size);
    format!(
        "{{\"kind\":\"evolution\",\"input\":{},\"reference\":{},\
         \"generations\":{generations},\"seed\":{seed}{extra}}}",
        image_json(&input),
        image_json(&reference)
    )
}

fn submit(addr: std::net::SocketAddr, body: &str) -> u64 {
    let response = request(addr, "POST", "/jobs", Some(body));
    assert_eq!(response.status, 201, "{}", response.body);
    response.json().get("job_id").unwrap().as_u64().unwrap()
}

// ---------------------------------------------------------------------------
// The round trip: HTTP result == in-process result, byte for byte
// ---------------------------------------------------------------------------

#[test]
fn http_results_are_byte_identical_to_in_process_execution() {
    let server = start_server(1);
    let addr = server.local_addr();

    let job_id = submit(addr, &evolution_body(16, 12, 77, ""));
    let settled = wait_settled(addr, job_id);
    assert_eq!(settled.get("status").unwrap().as_str(), Some("done"));
    let http_result = settled.get("result").unwrap();

    // The same spec through an in-process service with the same shape: the
    // determinism contract says the result is a pure function of
    // (spec, seed, platform shape), so the wire encoding must match byte
    // for byte — including the derived-vs-pinned seed (pinned here).
    let service = EhwService::new(ServiceConfig::new(1).seed(11)).unwrap();
    let (input, reference) = training_pair(16);
    let spec = JobSpec::evolution(input, reference)
        .generations(12)
        .seed(77)
        .build()
        .unwrap();
    let local = service
        .submit(spec)
        .unwrap()
        .wait()
        .expect("local job resolves");
    assert_eq!(
        http_result.to_json(),
        encode_result(&local).to_json(),
        "HTTP result and in-process result diverge"
    );
}

// ---------------------------------------------------------------------------
// The acceptance flow: submit + stream events + cancel mid-run + metrics
// ---------------------------------------------------------------------------

#[test]
fn submit_stream_cancel_and_metrics_flow() {
    let server = start_server(2);
    let addr = server.local_addr();

    // A short job whose progress we stream, and a marathon we cancel.
    let short_id = submit(addr, &evolution_body(16, 8, 3, ""));
    let marathon_id = submit(addr, &evolution_body(16, 1_000_000, 4, ""));

    // Stream the short job's events: one NDJSON line per generation, the
    // stream ends (connection closes) when the job settles.
    let mut stream = TcpStream::connect(addr).expect("connect for events");
    stream
        .write_all(format!("GET /jobs/{short_id}/events HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("stream drains");
    let text = String::from_utf8(raw).unwrap();
    let (head, body) = text.split_once("\r\n\r\n").expect("stream head");
    assert!(head.contains("application/x-ndjson"), "{head}");
    let events: Vec<Value> = body
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| parse(l).expect("event line is JSON"))
        .collect();
    assert!(
        !events.is_empty(),
        "at least one progress event must stream"
    );
    for (i, event) in events.iter().enumerate() {
        assert_eq!(event.get("sequence").unwrap().as_usize(), Some(i));
        assert!(event.get("generation").is_some());
    }
    assert_eq!(events.len(), 8, "one event per generation");

    // Wait until the marathon is actually running (not just queued) so the
    // cancellation exercises the mid-run path.
    let running_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let doc = get(addr, &format!("/jobs/{marathon_id}")).json();
        if doc.get("status").unwrap().as_str() == Some("running") {
            break;
        }
        assert!(
            Instant::now() < running_deadline,
            "marathon never started running"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let response = request(addr, "DELETE", &format!("/jobs/{marathon_id}"), None);
    assert_eq!(response.status, 202, "{}", response.body);
    assert_eq!(
        response.json().get("status").unwrap().as_str(),
        Some("cancelling")
    );

    // Cooperative cancellation settles within one generation boundary.
    let settled = wait_settled(addr, marathon_id);
    assert_eq!(settled.get("status").unwrap().as_str(), Some("cancelled"));
    let output = settled.get("result").unwrap().get("output").unwrap();
    assert_eq!(output.get("type").unwrap().as_str(), Some("cancelled"));
    assert_eq!(output.get("reason").unwrap().as_str(), Some("requested"));

    // Metrics reflect both jobs.
    let metrics = get(addr, "/metrics").json();
    let jobs = metrics.get("jobs").unwrap();
    assert_eq!(jobs.get("done").unwrap().as_u64(), Some(1));
    assert_eq!(jobs.get("cancelled").unwrap().as_u64(), Some(1));
    let service = metrics.get("service").unwrap();
    assert_eq!(service.get("submitted").unwrap().as_u64(), Some(2));
    assert_eq!(service.get("completed").unwrap().as_u64(), Some(1));
    assert_eq!(service.get("cancelled").unwrap().as_u64(), Some(1));
    let shards = metrics.get("shards").unwrap();
    assert_eq!(shards.get("alive_count").unwrap().as_usize(), Some(2));
    assert!(
        metrics
            .get("throughput")
            .unwrap()
            .get("jobs_per_sec")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );
    // The settled evolution recorded a latency sample under its kind.
    let latency = metrics.get("latency_ms").unwrap();
    assert!(
        latency
            .get("evolution")
            .unwrap()
            .get("total")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1
    );
}

#[test]
fn cancel_before_start_settles_with_zero_evaluations() {
    // One shard: a marathon occupies it while the victim waits in queue.
    let server = start_server(1);
    let addr = server.local_addr();

    let blocker_id = submit(addr, &evolution_body(16, 1_000_000, 5, ""));
    let victim_id = submit(addr, &evolution_body(16, 50, 6, ""));

    // Cancel the queued victim before any shard picks it up, then release
    // the blocker.
    let response = request(addr, "DELETE", &format!("/jobs/{victim_id}"), None);
    assert_eq!(response.status, 202);
    let response = request(addr, "DELETE", &format!("/jobs/{blocker_id}"), None);
    assert_eq!(response.status, 202);

    let victim = wait_settled(addr, victim_id);
    assert_eq!(victim.get("status").unwrap().as_str(), Some("cancelled"));
    let result = victim.get("result").unwrap();
    assert_eq!(result.get("evaluations").unwrap().as_u64(), Some(0));
    wait_settled(addr, blocker_id);
}

#[test]
fn an_expired_deadline_cancels_over_the_wire() {
    let server = start_server(1);
    let addr = server.local_addr();

    let job_id = submit(
        addr,
        &evolution_body(16, 1_000_000, 9, ",\"deadline_ms\":60"),
    );
    let settled = wait_settled(addr, job_id);
    assert_eq!(settled.get("status").unwrap().as_str(), Some("cancelled"));
    let output = settled.get("result").unwrap().get("output").unwrap();
    assert_eq!(
        output.get("reason").unwrap().as_str(),
        Some("deadline_expired")
    );
}

// ---------------------------------------------------------------------------
// Protocol robustness
// ---------------------------------------------------------------------------

#[test]
fn malformed_requests_get_400s_not_crashes() {
    let server = start_server(1);
    let addr = server.local_addr();

    // A broken request line.
    let response = raw_request(addr, b"NOT-EVEN-HTTP\r\n\r\n");
    assert_eq!(response.status, 400);

    // A header line with no colon.
    let response = raw_request(addr, b"GET /metrics HTTP/1.1\r\nbroken header\r\n\r\n");
    assert_eq!(response.status, 400);

    // A body that is not JSON.
    let response = request(addr, "POST", "/jobs", Some("this is not json"));
    assert_eq!(response.status, 400);
    assert!(response.json().get("error").is_some());

    // JSON that is not a valid spec.
    let response = request(addr, "POST", "/jobs", Some("{\"kind\":\"evolution\"}"));
    assert_eq!(response.status, 400);

    // A spec the builder rejects (offspring = 0).
    let body = {
        let (input, reference) = training_pair(4);
        format!(
            "{{\"kind\":\"evolution\",\"input\":{},\"reference\":{},\"offspring\":0}}",
            image_json(&input),
            image_json(&reference)
        )
    };
    let response = request(addr, "POST", "/jobs", Some(&body));
    assert_eq!(response.status, 400);
    assert!(response.body.contains("invalid spec"), "{}", response.body);

    // Unknown endpoints and wrong methods.
    assert_eq!(get(addr, "/nope").status, 404);
    assert_eq!(get(addr, "/jobs/999999").status, 404);
    assert_eq!(request(addr, "PUT", "/jobs", Some("{}")).status, 405);

    // The server is still healthy afterwards.
    assert_eq!(get(addr, "/metrics").status, 200);
}

#[test]
fn oversized_bodies_get_413() {
    let server = start_server(1);
    let addr = server.local_addr();

    // Claim a body bigger than the cap; the server must refuse from the
    // header alone, without buffering anything.
    let head = format!(
        "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        ehw_server::http::MAX_BODY_BYTES + 1
    );
    let response = raw_request(addr, head.as_bytes());
    assert_eq!(response.status, 413);
    assert!(response.body.contains("exceeds"), "{}", response.body);
}

#[test]
fn metrics_reflect_a_failed_job() {
    // Wire specs go through the validating builders, so a failure has to be
    // provoked below the builder layer: the doomed spec helper builds a spec
    // whose execution panics (offspring = 0 smuggled past validation).
    let service = EhwService::new(ServiceConfig::new(1).seed(11)).unwrap();
    let (input, reference) = training_pair(8);
    let handle = service
        .submit(ehw_platform::jobs::doomed_spec_for_test((input, reference)))
        .unwrap();
    let result = handle.wait().expect("failed jobs still resolve");
    assert!(result.is_failed());

    // The server wraps the *same* service instance and reports its counters.
    let server = EhwServer::serve(service, "127.0.0.1:0").expect("server binds");
    let addr = server.local_addr();
    let metrics = get(addr, "/metrics").json();
    let counters = metrics.get("service").unwrap();
    assert_eq!(counters.get("failed").unwrap().as_u64(), Some(1));
    assert_eq!(counters.get("completed").unwrap().as_u64(), Some(0));

    // And a failed job submitted over the wire reports status "failed" too:
    // reuse the events endpoint's registry by submitting a short job that
    // succeeds, proving per-state counts distinguish the two.
    let job_id = submit(addr, &evolution_body(8, 3, 2, ""));
    let settled = wait_settled(addr, job_id);
    assert_eq!(settled.get("status").unwrap().as_str(), Some("done"));
    let metrics = get(addr, "/metrics").json();
    assert_eq!(
        metrics
            .get("service")
            .unwrap()
            .get("failed")
            .unwrap()
            .as_u64(),
        Some(1)
    );
    assert_eq!(
        metrics
            .get("service")
            .unwrap()
            .get("completed")
            .unwrap()
            .as_u64(),
        Some(1)
    );
    assert_eq!(
        metrics.get("jobs").unwrap().get("done").unwrap().as_u64(),
        Some(1)
    );
}

#[test]
fn priority_and_seed_survive_the_wire() {
    let server = start_server(1);
    let addr = server.local_addr();

    // Full-range u64 seed: would corrupt silently if the codec went through
    // f64 anywhere.
    let seed = u64::MAX - 17;
    let body = evolution_body(8, 3, seed, ",\"priority\":\"high\"");
    let response = request(addr, "POST", "/jobs", Some(&body));
    assert_eq!(response.status, 201);
    let doc = response.json();
    assert_eq!(doc.get("seed").unwrap().as_u64(), Some(seed));
    let job_id = doc.get("job_id").unwrap().as_u64().unwrap();
    let settled = wait_settled(addr, job_id);
    assert_eq!(
        settled.get("result").unwrap().get("seed").unwrap().as_u64(),
        Some(seed)
    );
}

#[test]
fn events_for_unknown_jobs_are_404() {
    let server = start_server(1);
    let addr = server.local_addr();
    assert_eq!(get(addr, "/jobs/424242/events").status, 404);
}

// ---------------------------------------------------------------------------
// TTL eviction, Prometheus exposition and warm start over the wire
// ---------------------------------------------------------------------------

#[test]
fn settled_jobs_are_evicted_after_the_ttl() {
    let service = EhwService::new(ServiceConfig::new(1).seed(11)).expect("service starts");
    let server = EhwServer::serve_with_ttl(service, "127.0.0.1:0", Duration::from_millis(50))
        .expect("server binds");
    let addr = server.local_addr();

    let job_id = submit(addr, &evolution_body(8, 3, 21, ""));
    let settled = wait_settled(addr, job_id);
    assert_eq!(settled.get("status").unwrap().as_str(), Some("done"));

    // The reaper sweeps at TTL/4 cadence; well within a couple of seconds
    // the settled job must read as 404 and the eviction must be counted.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if get(addr, &format!("/jobs/{job_id}")).status == 404 {
            break;
        }
        assert!(Instant::now() < deadline, "settled job never evicted");
        std::thread::sleep(Duration::from_millis(20));
    }
    let retention = get(addr, "/metrics").json();
    let retention = retention.get("retention").unwrap();
    assert!(retention.get("jobs_evicted").unwrap().as_u64().unwrap() >= 1);
    // Eviction forgets the result; the service-level completion counter is
    // untouched.
    let metrics = get(addr, "/metrics").json();
    assert_eq!(
        metrics
            .get("service")
            .unwrap()
            .get("completed")
            .unwrap()
            .as_u64(),
        Some(1)
    );
}

#[test]
fn metrics_speak_prometheus_when_asked() {
    let server = start_server(1);
    let addr = server.local_addr();
    let job_id = submit(addr, &evolution_body(8, 3, 31, ""));
    wait_settled(addr, job_id);

    // Via the query string.
    let response = get(addr, "/metrics?format=prometheus");
    assert_eq!(response.status, 200);
    for needle in [
        "# TYPE ehw_jobs_submitted_total counter",
        "ehw_jobs_submitted_total 1",
        "ehw_jobs_completed_total 1",
        "ehw_jobs{state=\"done\"} 1",
        "# TYPE ehw_cache_fitness_hits_total counter",
        "ehw_jobs_evicted_total 0",
        "ehw_shards_alive 1",
    ] {
        assert!(
            response.body.contains(needle),
            "missing {needle:?} in:\n{}",
            response.body
        );
    }

    // Via the Accept header.
    let raw = "GET /metrics HTTP/1.1\r\nHost: t\r\nAccept: text/plain\r\nConnection: close\r\n\r\n";
    let response = raw_request(addr, raw.as_bytes());
    assert_eq!(response.status, 200);
    assert!(response.body.contains("ehw_uptime_seconds"));

    // Plain GET still speaks JSON, including the cache section.
    let metrics = get(addr, "/metrics").json();
    let cache = metrics.get("cache").unwrap();
    assert!(cache.get("fitness_hits").unwrap().as_u64().is_some());
    assert!(cache.get("fitness_hit_rate").unwrap().as_f64().is_some());
}

#[test]
fn warm_start_provenance_travels_the_wire() {
    let server = start_server(1);
    let addr = server.local_addr();

    // First warm-start job: the library is empty, so it runs cold — but it
    // reports the key it looked under and deposits its champion.
    let first = submit(addr, &evolution_body(16, 6, 41, ",\"warm_start\":true"));
    let settled = wait_settled(addr, first);
    let result = settled.get("result").unwrap();
    assert_eq!(result.get("warm_started").unwrap().as_bool(), Some(false));
    let key = result.get("warm_start_key").unwrap();
    // The image hash is a full-range u64, so it travels as a fixed-width hex
    // string — a raw JSON number would lose precision above 2^53.
    let image_hash = key.get("image_hash").unwrap().as_str().unwrap();
    assert_eq!(image_hash.len(), 16);
    assert!(u64::from_str_radix(image_hash, 16).is_ok());

    // Second job on the same image: seeded from the first job's champion.
    let second = submit(addr, &evolution_body(16, 6, 42, ",\"warm_start\":true"));
    let settled = wait_settled(addr, second);
    let result = settled.get("result").unwrap();
    assert_eq!(result.get("warm_started").unwrap().as_bool(), Some(true));
    assert_eq!(
        result.get("warm_start_key").unwrap().get("image_hash"),
        key.get("image_hash")
    );

    // A job that does not opt in reports no key at all.
    let third = submit(addr, &evolution_body(16, 6, 43, ""));
    let settled = wait_settled(addr, third);
    let result = settled.get("result").unwrap();
    assert_eq!(result.get("warm_started").unwrap().as_bool(), Some(false));
    assert!(result.get("warm_start_key").unwrap().is_null());
}

// ---------------------------------------------------------------------------
// Fault scenarios, recovery policies and the registry over the wire
// ---------------------------------------------------------------------------

fn pgm_image_json(img: &GrayImage) -> String {
    let pgm = ehw_server::base64::encode(&ehw_image::pgm::encode_p5(img));
    format!("{{\"pgm_base64\":\"{pgm}\"}}")
}

fn campaign_body(size: usize, seed: u64, scenario: &str, policy: &str) -> String {
    let (input, reference) = training_pair(size);
    format!(
        "{{\"kind\":\"fault_campaign\",\"input\":{},\"reference\":{},\
         \"arrays\":[0],\"num_arrays\":1,\"recovery_generations\":1,\
         \"scenario\":\"{scenario}\",\"policy\":\"{policy}\",\"seed\":{seed}}}",
        pgm_image_json(&input),
        pgm_image_json(&reference)
    )
}

#[test]
fn the_registry_endpoint_lists_scenarios_and_policies() {
    let server = start_server(1);
    let addr = server.local_addr();

    let response = get(addr, "/registry");
    assert_eq!(response.status, 200, "{}", response.body);
    let doc = response.json();
    let names = |section: &str| -> Vec<String> {
        doc.get(section)
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|e| e.get("name").unwrap().as_str().unwrap().to_string())
            .collect()
    };
    let scenarios = names("scenarios");
    for expected in [
        "single_sweep",
        "multi_pe_2",
        "correlated_row",
        "correlated_col",
        "correlated_neighborhood",
        "burst",
        "permanent_lpd",
        "rate_sweep",
        "storm",
    ] {
        assert!(
            scenarios.iter().any(|n| n == expected),
            "missing {expected}"
        );
    }
    let policies = names("policies");
    for expected in ["reevolve", "scrub_then_reevolve", "full_ladder"] {
        assert!(policies.iter().any(|n| n == expected), "missing {expected}");
    }

    // The registry is read-only: writes are method errors, not 404s.
    assert_eq!(request(addr, "POST", "/registry", Some("{}")).status, 405);
}

#[test]
fn base64_pgm_bodies_match_pixel_arrays_and_shrink_the_payload() {
    let server = start_server(1);
    let addr = server.local_addr();
    let (input, reference) = training_pair(16);

    // Same spec, two image transports: results must be byte-identical.
    let json_body = evolution_body(16, 5, 61, "");
    let pgm_body = format!(
        "{{\"kind\":\"evolution\",\"input\":{},\"reference\":{},\
         \"generations\":5,\"seed\":61}}",
        pgm_image_json(&input),
        pgm_image_json(&reference)
    );
    // ~2.4x here (3-digit pixels approach 3x); anything under 2x would mean
    // the compact transport regressed.
    assert!(
        json_body.len() as f64 / pgm_body.len() as f64 > 2.0,
        "base64 PGM transport should shrink the body: {} vs {}",
        json_body.len(),
        pgm_body.len()
    );

    let from_json = wait_settled(addr, submit(addr, &json_body));
    let from_pgm = wait_settled(addr, submit(addr, &pgm_body));
    // Everything but the job id (output, seed, evaluation counters) must be
    // identical: the image transport cannot leak into execution.
    assert_eq!(
        from_json
            .get("result")
            .unwrap()
            .get("output")
            .unwrap()
            .to_json(),
        from_pgm
            .get("result")
            .unwrap()
            .get("output")
            .unwrap()
            .to_json(),
        "image transport leaked into the result"
    );
    assert_eq!(
        from_json
            .get("result")
            .unwrap()
            .get("evaluations")
            .unwrap()
            .to_json(),
        from_pgm
            .get("result")
            .unwrap()
            .get("evaluations")
            .unwrap()
            .to_json()
    );
}

#[test]
fn scenario_campaigns_fold_into_one_resilience_report_over_http() {
    use ehw_server::wire::decode_campaign_report;
    use ehw_service::ResilienceReport;

    let server = start_server(2);
    let addr = server.local_addr();

    // Four scenario kinds crossed with two recovery ladders, all named via
    // the registry, all submitted over plain HTTP.
    let scenarios = ["single_sweep", "multi_pe_2", "correlated_row", "burst"];
    let policies = ["reevolve", "scrub_then_reevolve"];
    let jobs: Vec<(u64, &str, &str)> = scenarios
        .iter()
        .flat_map(|&scenario| {
            policies.iter().map(move |&policy| {
                let body = campaign_body(8, 1000, scenario, policy);
                (submit(addr, &body), scenario, policy)
            })
        })
        .collect();

    let mut resilience = ResilienceReport::default();
    for (job_id, scenario, _policy) in &jobs {
        let settled = wait_settled(addr, *job_id);
        assert_eq!(
            settled.get("status").unwrap().as_str(),
            Some("done"),
            "{scenario}: {}",
            settled.to_json()
        );
        let output = settled.get("result").unwrap().get("output").unwrap();
        let report = decode_campaign_report(output).expect("campaign output decodes");
        assert_eq!(&report.scenario, scenario);
        resilience.push_campaign(&report);
    }

    assert_eq!(resilience.len(), scenarios.len() * policies.len());
    for (entry, (_, scenario, _)) in resilience.entries.iter().zip(&jobs) {
        assert_eq!(&entry.scenario, scenario);
        assert!(entry.events > 0, "{scenario} produced no events");
        assert!(entry.evaluations >= 2 * entry.events as u64);
    }
    // The two ladders genuinely differ on the same scenario: the scrub-first
    // ladder heals transient faults without paying for evolution.
    let by_policy = |policy: &str| {
        resilience
            .entries
            .iter()
            .zip(&jobs)
            .filter(|(_, (_, _, p))| *p == policy)
            .map(|(entry, _)| entry.evaluations)
            .sum::<u64>()
    };
    assert!(
        by_policy("scrub_then_reevolve") < by_policy("reevolve"),
        "the scrub ladder should cost fewer evaluations than reevolve-only"
    );
}

// ---------------------------------------------------------------------------
// Keep-alive: one socket, many requests
// ---------------------------------------------------------------------------

/// Reads exactly one framed response off a reused connection: the status
/// line and headers, then `Content-Length` bytes of body.
fn read_one_response(reader: &mut impl std::io::BufRead) -> (u16, String, String) {
    let mut head = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        if line == "\r\n" || line == "\n" || line.is_empty() {
            break;
        }
        head.push_str(&line);
    }
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .unwrap_or_else(|| panic!("no status in: {head}"));
    let content_length = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or_else(|| panic!("no Content-Length in: {head}"));
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, head, String::from_utf8(body).expect("UTF-8 body"))
}

#[test]
fn one_socket_serves_many_requests_until_asked_to_close() {
    let server = start_server(1);
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));

    // Several GETs and a POST, all down the same socket.
    for _ in 0..3 {
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (status, head, body) = read_one_response(&mut reader);
        assert_eq!(status, 200, "{body}");
        assert!(head.contains("Connection: keep-alive"), "{head}");
        parse(&body).expect("metrics stay JSON over a reused socket");
    }
    let spec = evolution_body(8, 3, 71, "");
    stream
        .write_all(
            format!(
                "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{spec}",
                spec.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let (status, head, body) = read_one_response(&mut reader);
    assert_eq!(status, 201, "{body}");
    assert!(head.contains("Connection: keep-alive"), "{head}");
    let job_id = parse(&body)
        .unwrap()
        .get("job_id")
        .unwrap()
        .as_u64()
        .unwrap();
    wait_settled(addr, job_id);

    // An explicit `Connection: close` is honoured: the response announces it
    // and the server ends the session.
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let (status, head, _) = read_one_response(&mut reader);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head}");
    let mut probe = [0u8; 1];
    assert_eq!(
        std::io::Read::read(&mut reader, &mut probe).expect("clean EOF"),
        0,
        "server must close after Connection: close"
    );
}

#[test]
fn the_per_connection_request_budget_is_bounded() {
    let server = start_server(1);
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    // The budget'th request is served with `Connection: close`; the socket
    // dies afterwards, so a greedy client cannot pin a handler thread.
    let budget = ehw_server::http::MAX_REQUESTS_PER_CONNECTION;
    for served in 1..=budget {
        stream
            .write_all(b"GET /registry HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (status, head, _) = read_one_response(&mut reader);
        assert_eq!(status, 200);
        let expected = if served == budget {
            "Connection: close"
        } else {
            "Connection: keep-alive"
        };
        assert!(head.contains(expected), "request {served}: {head}");
    }
    let mut probe = [0u8; 1];
    assert_eq!(std::io::Read::read(&mut reader, &mut probe).unwrap(), 0);
}

// ---------------------------------------------------------------------------
// Streaming jobs over the wire
// ---------------------------------------------------------------------------

fn stream_body(seed: u64) -> String {
    format!(
        "{{\"source\":{{\"type\":\"synthetic\",\"scene\":\"shapes\",\"complexity\":4,\
          \"width\":16,\"height\":16,\"frames\":10,\
          \"schedule\":[\
            {{\"start_frame\":0,\"noise\":{{\"model\":\"salt_pepper\",\"density\":0.1}}}},\
            {{\"start_frame\":6,\"noise\":{{\"model\":\"salt_pepper\",\"density\":0.5}}}}]}},\
         \"drift_window\":3,\"drift_threshold_pct\":140,\"generations\":6,\"seed\":{seed}}}"
    )
}

#[test]
fn streams_submit_through_their_own_endpoint_and_settle_with_a_report() {
    let server = start_server(1);
    let addr = server.local_addr();

    // `POST /streams` defaults the kind; a conflicting kind is refused.
    let response = request(addr, "POST", "/streams", Some(&stream_body(7)));
    assert_eq!(response.status, 201, "{}", response.body);
    let doc = response.json();
    assert_eq!(doc.get("kind").unwrap().as_str(), Some("stream"));
    let job_id = doc.get("job_id").unwrap().as_u64().unwrap();

    let wrong_kind = format!(
        "{{\"kind\":\"evolution\",{}",
        stream_body(7).strip_prefix('{').unwrap()
    );
    let response = request(addr, "POST", "/streams", Some(&wrong_kind));
    assert_eq!(response.status, 400, "{}", response.body);
    assert!(
        response.body.contains("\\\"stream\\\" specs"),
        "{}",
        response.body
    );

    // Events carry the per-frame stream phases.
    let mut stream = TcpStream::connect(addr).expect("connect for events");
    stream
        .write_all(format!("GET /jobs/{job_id}/events HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("stream drains");
    let text = String::from_utf8(raw).unwrap();
    let (_, events_body) = text.split_once("\r\n\r\n").expect("stream head");
    let events: Vec<Value> = events_body
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| parse(l).expect("event line is JSON"))
        .collect();
    let frame_phases = events
        .iter()
        .filter(|e| {
            e.get("stream")
                .and_then(|s| s.get("phase"))
                .and_then(Value::as_str)
                == Some("frame")
        })
        .count();
    assert_eq!(frame_phases, 10, "one frame phase per frame");

    // The settled result is the stream report.
    let settled = wait_settled(addr, job_id);
    assert_eq!(settled.get("status").unwrap().as_str(), Some("done"));
    let output = settled.get("result").unwrap().get("output").unwrap();
    assert_eq!(output.get("type").unwrap().as_str(), Some("stream"));
    assert_eq!(output.get("frames").unwrap().as_usize(), Some(10));
    let hash = output.get("output_hash").unwrap().as_str().unwrap();
    assert_eq!(hash.len(), 16);
    assert!(u64::from_str_radix(hash, 16).is_ok());

    // Same spec, same seed: byte-identical report over the wire.
    let again = submit_stream(addr, &stream_body(7));
    let settled_again = wait_settled(addr, again);
    assert_eq!(
        settled_again
            .get("result")
            .unwrap()
            .get("output")
            .unwrap()
            .to_json(),
        output.to_json(),
        "stream results must be a pure function of spec and seed"
    );
}

fn submit_stream(addr: std::net::SocketAddr, body: &str) -> u64 {
    let response = request(addr, "POST", "/streams", Some(body));
    assert_eq!(response.status, 201, "{}", response.body);
    response.json().get("job_id").unwrap().as_u64().unwrap()
}

// ---------------------------------------------------------------------------
// Champion persistence across server restarts
// ---------------------------------------------------------------------------

#[test]
fn champions_survive_a_server_restart_through_their_file() {
    use ehw_service::ScenarioRegistry;

    let path = std::env::temp_dir().join(format!("ehw-champions-test-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // First life: deposit a champion, wait for the reaper to persist it.
    {
        let service = EhwService::new(ServiceConfig::new(1).seed(11)).expect("service starts");
        let server = EhwServer::serve_with_persistence(
            service,
            "127.0.0.1:0",
            Duration::from_millis(100),
            ScenarioRegistry::builtin(),
            Some(path.clone()),
        )
        .expect("server starts");
        let addr = server.local_addr();
        let job_id = submit(addr, &evolution_body(16, 6, 41, ",\"warm_start\":true"));
        let settled = wait_settled(addr, job_id);
        assert_eq!(settled.get("status").unwrap().as_str(), Some("done"));
        let deadline = Instant::now() + Duration::from_secs(10);
        while !path.exists() {
            assert!(Instant::now() < deadline, "champions file never written");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // The file is the documented shape.
    let text = std::fs::read_to_string(&path).expect("champions file");
    let doc = parse(&text).expect("champions file is JSON");
    assert_eq!(doc.get("version").unwrap().as_u64(), Some(1));
    assert_eq!(
        doc.get("champions").unwrap().as_array().unwrap().len(),
        1,
        "{text}"
    );

    // Second life: the library loads at startup, so the very first
    // warm-start job on the same image is seeded from the restored champion.
    {
        let service = EhwService::new(ServiceConfig::new(1).seed(11)).expect("service starts");
        let server = EhwServer::serve_with_persistence(
            service,
            "127.0.0.1:0",
            Duration::from_millis(100),
            ScenarioRegistry::builtin(),
            Some(path.clone()),
        )
        .expect("server restarts");
        let addr = server.local_addr();
        let job_id = submit(addr, &evolution_body(16, 6, 42, ",\"warm_start\":true"));
        let settled = wait_settled(addr, job_id);
        let result = settled.get("result").unwrap();
        assert_eq!(
            result.get("warm_started").unwrap().as_bool(),
            Some(true),
            "restored champion must seed the first job of the second life"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_malformed_champions_file_refuses_to_boot() {
    use ehw_service::ScenarioRegistry;

    let path = std::env::temp_dir().join(format!("ehw-champions-bad-{}.json", std::process::id()));
    std::fs::write(&path, b"{\"version\":1,\"champions\":[{\"broken\":true}]}").unwrap();
    let service = EhwService::new(ServiceConfig::new(1).seed(11)).expect("service starts");
    let error = match EhwServer::serve_with_persistence(
        service,
        "127.0.0.1:0",
        Duration::from_millis(100),
        ScenarioRegistry::builtin(),
        Some(path.clone()),
    ) {
        Ok(_) => panic!("half-restored libraries are worse than an error"),
        Err(error) => error,
    };
    assert!(error.to_string().contains("champion"), "{error}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unknown_scenario_and_policy_names_get_structured_400s() {
    let server = start_server(1);
    let addr = server.local_addr();

    for (scenario, policy, needle) in [
        ("meteor", "reevolve", "unknown fault scenario 'meteor'"),
        ("burst", "prayer", "unknown recovery policy 'prayer'"),
    ] {
        let response = request(
            addr,
            "POST",
            "/jobs",
            Some(&campaign_body(8, 5, scenario, policy)),
        );
        assert_eq!(response.status, 400, "{}", response.body);
        let error = response.json();
        let message = error.get("error").unwrap().as_str().unwrap().to_string();
        assert!(message.contains(needle), "{message}");
        assert!(message.contains("/registry"), "{message}");
    }

    // The server is still healthy afterwards.
    assert_eq!(get(addr, "/metrics").status, 200);
}
