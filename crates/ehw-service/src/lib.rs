//! Job-oriented service front-end over a sharded platform pool.
//!
//! The paper's architecture is a shared reconfigurable fabric time-multiplexed
//! across independent evolution tasks; this crate is the serving layer that
//! story maps onto.  Every workload the platform supports — single-filter and
//! parallel evolution, cascades, fault campaigns — is described by one typed
//! request ([`JobSpec`], re-exported from `ehw_platform::jobs`) and submitted
//! to an [`EhwService`], which owns a pool of [`EhwPlatform`] shards and a
//! bounded, priority-laned job queue:
//!
//! ```no_run
//! use ehw_service::{EhwService, JobSpec, ServiceConfig};
//! # let (noisy, clean) = (ehw_image::synth::gradient(32, 32), ehw_image::synth::gradient(32, 32));
//! let service = EhwService::new(ServiceConfig::new(2)).expect("valid config");
//! let spec = JobSpec::evolution(noisy, clean)
//!     .generations(200)
//!     .build()
//!     .expect("valid spec");
//! let handle = service.submit(spec).expect("service accepts jobs");
//! let result = handle.wait().expect("shard pool is alive");
//! println!("best fitness: {:?}", result.final_fitness());
//! ```
//!
//! # Determinism contract
//!
//! A job's outcome is a pure function of its spec and its effective seed.
//! The seed is either pinned in the spec or derived from the service root as
//! `SeedSequence::new(config.seed).fork(job_id)`, and job ids number
//! submissions in order — so a batch of N submitted jobs returns
//! byte-identical results regardless of the platform count, the queue order,
//! the priority lanes, or the worker configuration (seeds are assigned at
//! submission, before any reordering can happen).
//! `tests/property_service_equivalence.rs` pins this, together with
//! byte-identity against the legacy entry points.
//!
//! # Backpressure, priorities
//!
//! The queue holds at most [`ServiceConfig::queue_depth`] pending jobs;
//! [`EhwService::submit`] **blocks** once it is full and never drops a job.
//! [`EhwService::submit_with`] places a job in one of three [`Priority`]
//! lanes; shards always drain higher lanes first, FIFO within a lane.
//!
//! # Cancellation, deadlines, failure
//!
//! Every handle exposes a [`JobMonitor`] carrying a cooperative cancellation
//! token and a per-generation progress feed.  [`JobMonitor::cancel`] (or a
//! [`JobOptions::deadline`]) stops the job at the next generation boundary
//! with [`JobOutput::Cancelled`]; work done so far still counts in the
//! result envelope.  A job that panics resolves to [`JobOutput::Failed`] and
//! the shard survives.  A shard that dies abnormally (see
//! [`EhwService::kill_shard_for_test`]) no longer takes the service down:
//! the queue-pickup lock is poison-recovered by the surviving shards, and
//! only if **every** shard is gone do the still-queued jobs resolve to
//! [`JobLost`] errors instead of stalling their waiters.

#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ehw_parallel::{EnvConfigError, ParallelConfig};
use ehw_platform::jobs;
use ehw_platform::platform::EhwPlatform;
use rand::SeedSequence;

pub use ehw_platform::cache::{
    CacheStats, Champion, ChampionKey, CrossJobCache, CrossJobCacheConfig,
};
pub use ehw_platform::jobs::{
    CancelKind, CascadeBuilder, CascadeSpec, EvolutionBuilder, EvolutionSpec, FaultCampaignBuilder,
    FaultCampaignSpec, JobOutput, JobProgress, JobResult, JobSpec, SpecError, StreamBuilder,
    StreamSourceSpec, StreamSpec,
};
pub use ehw_platform::scenario::{
    FaultScenario, InjectionSchedule, ResilienceEntry, ResilienceReport, ScenarioKind,
    ScenarioRegistry, TargetFilter,
};
pub use ehw_platform::self_healing::{RecoveryPolicy, RecoveryStep};
pub use ehw_stream::{
    AdaptationConfig, DriftConfig, NoiseSegment, PgmDirSource, SceneKind, SegmentReport,
    StreamEvent, StreamReport,
};

// ---------------------------------------------------------------------------
// Poison recovery
// ---------------------------------------------------------------------------

/// Locks `mutex`, recovering the guard if a panicking holder poisoned it.
///
/// Every queue and event-log invariant is re-established before the guard is
/// released on all paths (lengths are updated in the same critical section as
/// the pops that change them), so a poisoned lock means "a sibling shard
/// died", not "the data is torn" — the right response is to keep serving.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait_recover<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

fn wait_timeout_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match condvar.wait_timeout(guard, timeout) {
        Ok((guard, result)) => (guard, result.timed_out()),
        Err(poisoned) => {
            let (guard, result) = poisoned.into_inner();
            (guard, result.timed_out())
        }
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Sizing of an [`EhwService`]: how many platform shards it owns, how much
/// host parallelism each shard may use, and how deep the submission queue is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of platform shards (each owns its platforms and executes one
    /// job at a time).
    pub platforms: usize,
    /// Worker threads each shard's platform uses for intra-job parallelism
    /// (candidate batches, campaign positions).  Scheduling only: results
    /// are byte-identical at any value.
    pub workers_per_platform: usize,
    /// Work-items-per-chunk for the shards' intra-job parallelism (0 =
    /// auto).  Scheduling only, like `workers_per_platform`;
    /// [`from_env`](Self::from_env) fills it from a validated `EHW_CHUNK`.
    pub chunk: usize,
    /// Maximum number of submitted-but-not-yet-started jobs; a full queue
    /// blocks [`EhwService::submit`] (backpressure) instead of dropping.
    pub queue_depth: usize,
    /// Root seed jobs without a pinned seed derive theirs from (job `n` runs
    /// with `SeedSequence::new(seed).fork(n)`).
    pub seed: u64,
    /// Whether the shards share a service-scope [`CrossJobCache`] (shared
    /// window extractions, content-addressed exact-fitness cache, champion
    /// library, image-affinity queue pickup).  Caching never changes a result
    /// byte — `tests/property_cache_determinism.rs` pins byte-identity with
    /// this flag on vs off — it only changes how much work is recomputed.
    /// Warm starting additionally requires the per-spec
    /// [`EvolutionBuilder::warm_start`] opt-in.
    pub cache: bool,
    /// Sizing of the cross-job cache tiers; ignored when `cache` is off.
    pub cache_sizes: CrossJobCacheConfig,
}

impl ServiceConfig {
    /// A configuration with `platforms` shards, one worker per shard, auto
    /// chunking, a queue depth of twice the shard count and seed 0.  Fully
    /// explicit — nothing is read from the environment.
    pub fn new(platforms: usize) -> Self {
        ServiceConfig {
            platforms,
            workers_per_platform: 1,
            chunk: 0,
            queue_depth: platforms.saturating_mul(2).max(1),
            seed: 0,
            cache: true,
            cache_sizes: CrossJobCacheConfig::default(),
        }
    }

    /// A configuration sized from the environment: one shard, with
    /// `EHW_WORKERS` / `EHW_CHUNK` **validated** for the per-shard worker
    /// count and chunk size — a malformed variable is a deployment error and
    /// comes back as [`ServiceError::Environment`], never a silent default.
    /// This is the satellite contract on top of the legacy
    /// [`ParallelConfig::from_env`] fallback behaviour, which the experiment
    /// binaries keep.
    pub fn from_env() -> Result<Self, ServiceError> {
        let parallel = ParallelConfig::try_from_env().map_err(ServiceError::Environment)?;
        Ok(ServiceConfig {
            workers_per_platform: parallel.workers,
            chunk: parallel.chunk,
            ..Self::new(1)
        })
    }

    /// Sets the per-shard worker count.
    pub fn workers_per_platform(mut self, workers: usize) -> Self {
        self.workers_per_platform = workers;
        self
    }

    /// Sets the submission queue depth.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables the service-scope cross-job cache.
    pub fn cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the cross-job cache tier capacities.
    pub fn cache_sizes(mut self, sizes: CrossJobCacheConfig) -> Self {
        self.cache_sizes = sizes;
        self
    }

    /// Validates the sizing of the configuration.  The environment is only
    /// consulted — and validated, surfacing malformed `EHW_WORKERS` /
    /// `EHW_CHUNK` as [`ServiceError::Environment`] — by
    /// [`from_env`](Self::from_env); an explicitly constructed config never
    /// reads it, so binaries with their own flag handling keep working
    /// whatever the environment contains.
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.platforms == 0 {
            return Err(ServiceError::InvalidConfig(
                "platforms must be at least 1".into(),
            ));
        }
        if self.workers_per_platform == 0 {
            return Err(ServiceError::InvalidConfig(
                "workers_per_platform must be at least 1".into(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(ServiceError::InvalidConfig(
                "queue_depth must be at least 1".into(),
            ));
        }
        if self.cache
            && (self.cache_sizes.windows_capacity == 0
                || self.cache_sizes.fitness_capacity == 0
                || self.cache_sizes.champion_capacity == 0)
        {
            return Err(ServiceError::InvalidConfig(
                "cache tier capacities must be at least 1 (or disable the cache)".into(),
            ));
        }
        Ok(())
    }
}

/// The job this handle was waiting on can never produce a result: the shard
/// pool died abnormally (every shard gone) before the job ran to completion.
///
/// This is a **service** failure, not a job failure — a job whose own
/// execution panics still resolves normally with [`JobOutput::Failed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobLost {
    /// The id of the job whose result was lost.
    pub job_id: u64,
}

impl std::fmt::Display for JobLost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} was lost: the shard pool died before it could reply",
            self.job_id
        )
    }
}

impl std::error::Error for JobLost {}

/// Why the service rejected a configuration or a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// A sizing field is out of range.
    InvalidConfig(String),
    /// The process environment carries a malformed parallelism variable.
    Environment(EnvConfigError),
    /// The service is shutting down and no longer accepts jobs.
    Shutdown,
    /// A job in a batch was lost to an abnormal shard-pool death.
    JobLost(JobLost),
}

impl From<JobLost> for ServiceError {
    fn from(lost: JobLost) -> Self {
        ServiceError::JobLost(lost)
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::InvalidConfig(why) => write!(f, "invalid service config: {why}"),
            ServiceError::Environment(err) => write!(f, "invalid environment: {err}"),
            ServiceError::Shutdown => write!(f, "the service is shut down"),
            ServiceError::JobLost(lost) => lost.fmt(f),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Environment(err) => Some(err),
            ServiceError::JobLost(lost) => Some(lost),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Priorities and per-job options
// ---------------------------------------------------------------------------

/// Which lane of the bounded queue a job waits in.  Shards always pick from
/// the highest non-empty lane, FIFO within a lane.  Priorities reorder
/// **scheduling only**: seeds are assigned at submission, so results stay
/// byte-identical whatever lane a job rides in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Picked before everything else (interactive / latency-sensitive jobs).
    High,
    /// The default lane.
    #[default]
    Normal,
    /// Picked only when the other lanes are empty (bulk / batch work).
    Low,
}

impl Priority {
    fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Per-submission options for [`EhwService::submit_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobOptions {
    /// The queue lane the job waits in.
    pub priority: Priority,
    /// Wall-clock budget measured from submission.  Checked cooperatively at
    /// generation boundaries: an expired job stops with
    /// [`JobOutput::Cancelled`]`(`[`CancelKind::DeadlineExpired`]`)` at the
    /// next boundary (or before it starts), never mid-generation.
    pub deadline: Option<Duration>,
}

impl JobOptions {
    /// Options with the given priority and no deadline.
    pub fn with_priority(priority: Priority) -> Self {
        JobOptions {
            priority,
            ..Self::default()
        }
    }

    /// Sets the wall-clock deadline, measured from submission.
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }
}

// ---------------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------------

/// Monotonic counters of a service's lifetime (see [`EhwService::stats`]).
///
/// Every accepted job ends in exactly one of `completed`, `failed`,
/// `cancelled` or `lost`, so
/// `completed + failed + cancelled + lost <= submitted`, with equality once
/// the queue is drained — `completed` counts **successes only** and cannot
/// lie about failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Jobs accepted by [`EhwService::submit`].
    pub submitted: u64,
    /// Jobs that produced a successful result.
    pub completed: u64,
    /// Jobs that panicked while executing ([`JobOutput::Failed`]).
    pub failed: u64,
    /// Jobs stopped by cancellation or deadline ([`JobOutput::Cancelled`]).
    pub cancelled: u64,
    /// Jobs dropped because the whole shard pool died ([`JobLost`]).
    pub lost: u64,
    /// Cross-job cache counters (all zero when [`ServiceConfig::cache`] is
    /// off).
    pub cache: CacheStats,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    lost: AtomicU64,
}

/// Per-generation progress feed of one job, shared between its handle, its
/// monitors and the executing shard.
#[derive(Debug)]
struct EventLog {
    events: Vec<JobProgress>,
    /// No more events will ever arrive (the job finished, was cancelled
    /// before starting, or was lost).
    closed: bool,
}

#[derive(Debug)]
struct JobShared {
    control: jobs::JobControl,
    running: AtomicBool,
    events: Mutex<EventLog>,
    events_cv: Condvar,
}

impl JobShared {
    fn new(deadline: Option<Instant>) -> Self {
        JobShared {
            control: jobs::JobControl::with_deadline(deadline),
            running: AtomicBool::new(false),
            events: Mutex::new(EventLog {
                events: Vec::new(),
                closed: false,
            }),
            events_cv: Condvar::new(),
        }
    }

    fn push_event(&self, event: JobProgress) {
        lock_recover(&self.events).events.push(event);
        self.events_cv.notify_all();
    }

    fn close_events(&self) {
        lock_recover(&self.events).closed = true;
        self.events_cv.notify_all();
    }
}

struct QueuedJob {
    job_id: u64,
    seed: u64,
    spec: JobSpec,
    /// Scheduling affinity: the training-image content hash of an evolution
    /// job (when the cache is on).  A shard prefers jobs whose affinity
    /// matches its previous job, so same-image batches stay on one shard and
    /// keep its compiled state warm.  Scheduling only — the seed is already
    /// assigned, so results are byte-identical with or without the routing.
    affinity: Option<u64>,
    /// How many times an affinity match behind this job was picked ahead of
    /// it while it sat at its lane's front.  Capped at
    /// [`AFFINITY_BYPASS_LIMIT`] so a sustained same-image stream can never
    /// starve a non-matching job.
    bypassed: u32,
    reply: mpsc::Sender<JobResult>,
    shared: Arc<JobShared>,
}

enum QueueItem {
    // Boxed: a QueuedJob carries a full JobSpec (images included), which
    // would otherwise dwarf the pill variant.
    Job(Box<QueuedJob>),
    /// Test-only poison pill: the shard that picks this up panics **while
    /// holding the queue-pickup lock**, reproducing the abnormal-death mode
    /// the poison-recovery path exists for.
    ShardPanic,
}

struct QueueState {
    lanes: [VecDeque<QueueItem>; 3],
    open: bool,
}

impl QueueState {
    fn jobs_queued(&self) -> usize {
        self.lanes
            .iter()
            .flatten()
            .filter(|item| matches!(item, QueueItem::Job(_)))
            .count()
    }
}

/// Most times an affinity match may be picked ahead of its lane's front
/// before the front job is taken regardless — the bound that keeps affinity
/// routing from starving non-matching (and possibly deadline-carrying) jobs
/// under a sustained same-image stream.
const AFFINITY_BYPASS_LIMIT: u32 = 4;

/// Whether an affinity match may be picked ahead of `lane`'s front: not if
/// the front job carries a deadline (it could expire while bypassed), and
/// not once it has already been bypassed [`AFFINITY_BYPASS_LIMIT`] times.
fn front_may_be_bypassed(lane: &VecDeque<QueueItem>) -> bool {
    match lane.front() {
        Some(QueueItem::Job(front)) => {
            !front.shared.control.has_deadline() && front.bypassed < AFFINITY_BYPASS_LIMIT
        }
        // A pill at the front is matched by the affinity scan itself
        // (pick == 0), so this arm is never the bypass target; be permissive.
        _ => true,
    }
}

/// A bounded, three-lane MPMC queue with poison-recovering pickup.
struct JobQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                lanes: Default::default(),
                open: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Blocks while the queue is at capacity; `Err` means the queue closed.
    fn push(&self, job: QueuedJob, priority: Priority) -> Result<(), ()> {
        let mut state = lock_recover(&self.state);
        while state.open && state.jobs_queued() >= self.capacity {
            state = wait_recover(&self.not_full, state);
        }
        if !state.open {
            return Err(());
        }
        state.lanes[priority.lane()].push_back(QueueItem::Job(Box::new(job)));
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Test hook: enqueue a poison pill at the head of the high lane,
    /// bypassing capacity (it is not a job).
    fn push_pill(&self) {
        lock_recover(&self.state).lanes[0].push_front(QueueItem::ShardPanic);
        self.not_empty.notify_one();
    }

    /// Test shorthand for [`pop_preferring`](Self::pop_preferring) with no
    /// affinity hint — exact lane-priority FIFO.
    #[cfg(test)]
    fn pop(&self) -> Option<QueuedJob> {
        self.pop_preferring(None)
    }

    /// Blocks for the next job; `None` means the queue closed and drained.
    /// Lanes drain even after close (graceful shutdown executes everything
    /// already accepted).  Panics — deliberately, while holding the pickup
    /// lock — on a [`QueueItem::ShardPanic`] pill.
    ///
    /// With an affinity hint: within the highest non-empty lane, the first
    /// job whose [`QueuedJob::affinity`] matches the hint is picked ahead of
    /// the lane's front (plain FIFO when nothing matches or no hint is
    /// given).  Lane priority is never crossed, and a poison pill still
    /// fires before any job it precedes.
    ///
    /// The preference is bounded so it stays a locality *hint*, never a
    /// scheduling class: a front job carrying a deadline is never bypassed,
    /// and any front job is picked after at most [`AFFINITY_BYPASS_LIMIT`]
    /// bypasses — a sustained same-image stream cannot starve a
    /// non-matching job (which could otherwise expire while queued).
    fn pop_preferring(&self, affinity: Option<u64>) -> Option<QueuedJob> {
        let mut state = lock_recover(&self.state);
        loop {
            let lane = state.lanes.iter_mut().find(|lane| !lane.is_empty());
            if let Some(lane) = lane {
                let pick = affinity
                    .and_then(|hint| {
                        lane.iter().position(|item| match item {
                            QueueItem::Job(job) => job.affinity == Some(hint),
                            QueueItem::ShardPanic => true,
                        })
                    })
                    .filter(|&pick| pick == 0 || front_may_be_bypassed(lane))
                    .unwrap_or(0);
                if pick > 0 {
                    if let Some(QueueItem::Job(front)) = lane.front_mut() {
                        front.bypassed += 1;
                    }
                }
                let item = lane.remove(pick).expect("picked index is in the lane");
                self.not_full.notify_one();
                match item {
                    QueueItem::Job(job) => return Some(*job),
                    QueueItem::ShardPanic => {
                        panic!("shard killed by test poison pill")
                    }
                }
            }
            if !state.open {
                return None;
            }
            state = wait_recover(&self.not_empty, state);
        }
    }

    /// Stops accepting jobs; queued jobs still execute ([`pop`](Self::pop)
    /// drains before reporting closure).
    fn close(&self) {
        lock_recover(&self.state).open = false;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Closes the queue **and** drops every queued job (their reply senders
    /// drop, resolving their handles to [`JobLost`]).  Only the last dying
    /// shard calls this — with live shards, queued jobs must keep their
    /// execution guarantee.  Each job is counted in `counters.lost` *before*
    /// its reply sender drops, so a waiter that observes `JobLost` also
    /// observes the matching stats.
    fn close_and_drain(&self, counters: &Counters) {
        let mut state = lock_recover(&self.state);
        state.open = false;
        for lane in &mut state.lanes {
            for item in lane.drain(..) {
                if let QueueItem::Job(job) = item {
                    counters.lost.fetch_add(1, Ordering::SeqCst);
                    job.shared.close_events();
                }
            }
        }
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn depth(&self) -> usize {
        lock_recover(&self.state).jobs_queued()
    }
}

/// The serving front-end: a sharded pool of [`EhwPlatform`]s consuming a
/// bounded, priority-laned queue of [`JobSpec`]s.
///
/// Each shard is one OS thread owning its platforms (one per array count it
/// has seen, recycled via [`EhwPlatform::reset`] so no state leaks between
/// jobs) and executing one job at a time through the single
/// [`jobs::execute_controlled`] path; intra-job parallelism is governed by
/// [`ServiceConfig::workers_per_platform`].  Dropping the service is a
/// **graceful drain**, not a cancel: the queue stops accepting new jobs,
/// every job already accepted still executes, the shards are joined, and
/// every issued [`JobHandle`] remains resolvable (results are buffered in
/// the handle's channel).  To stop a job early, cancel it through its
/// [`JobMonitor`] or give it a [`JobOptions::deadline`].
pub struct EhwService {
    queue: Arc<JobQueue>,
    shards: Vec<JoinHandle<()>>,
    liveness: Arc<Vec<AtomicBool>>,
    root: SeedSequence,
    next_job_id: AtomicU64,
    counters: Arc<Counters>,
    cache: Option<Arc<CrossJobCache>>,
    config: ServiceConfig,
}

impl EhwService {
    /// Validates the configuration and starts the shard threads.
    pub fn new(config: ServiceConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        let parallel = ParallelConfig {
            workers: config.workers_per_platform,
            chunk: config.chunk,
        };
        let queue = Arc::new(JobQueue::new(config.queue_depth));
        let counters = Arc::new(Counters::default());
        let cache = config
            .cache
            .then(|| Arc::new(CrossJobCache::new(config.cache_sizes)));
        let liveness: Arc<Vec<AtomicBool>> = Arc::new(
            (0..config.platforms)
                .map(|_| AtomicBool::new(true))
                .collect(),
        );
        let shards = (0..config.platforms)
            .map(|shard| {
                let queue = Arc::clone(&queue);
                let counters = Arc::clone(&counters);
                let liveness = Arc::clone(&liveness);
                let cache = cache.clone();
                std::thread::Builder::new()
                    .name(format!("ehw-shard-{shard}"))
                    .spawn(move || shard_loop(shard, &queue, parallel, &counters, &liveness, cache))
                    .expect("spawn shard thread")
            })
            .collect();
        Ok(EhwService {
            queue,
            shards,
            liveness,
            root: SeedSequence::new(config.seed),
            next_job_id: AtomicU64::new(0),
            counters,
            cache,
            config,
        })
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Lifetime counters: jobs submitted, and how each settled job settled.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.counters.submitted.load(Ordering::SeqCst),
            completed: self.counters.completed.load(Ordering::SeqCst),
            failed: self.counters.failed.load(Ordering::SeqCst),
            cancelled: self.counters.cancelled.load(Ordering::SeqCst),
            lost: self.counters.lost.load(Ordering::SeqCst),
            cache: self
                .cache
                .as_deref()
                .map(CrossJobCache::stats)
                .unwrap_or_default(),
        }
    }

    /// The shared cross-job cache, when [`ServiceConfig::cache`] is on —
    /// e.g. to pre-seed the champion library before submitting warm-started
    /// jobs.
    pub fn cache(&self) -> Option<&Arc<CrossJobCache>> {
        self.cache.as_ref()
    }

    /// Jobs submitted but not yet picked up by a shard.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Per-shard liveness flags, in shard order.  A `false` shard died
    /// abnormally (a normal shutdown joins shards while they are still
    /// "alive" in this view).
    pub fn shard_liveness(&self) -> Vec<bool> {
        self.liveness
            .iter()
            .map(|alive| alive.load(Ordering::SeqCst))
            .collect()
    }

    /// How many shards are still serving.
    pub fn alive_shards(&self) -> usize {
        self.liveness
            .iter()
            .filter(|alive| alive.load(Ordering::SeqCst))
            .count()
    }

    /// Submits one job on the [`Priority::Normal`] lane with no deadline.
    /// Blocks while the queue is at [`ServiceConfig::queue_depth`]
    /// (backpressure — jobs are never dropped).  Returns a handle resolving
    /// to the job's [`JobResult`].
    ///
    /// The job id numbers submissions in order; the effective seed is the
    /// spec's pinned seed or `root.fork(job_id)`, so a deterministic
    /// submission sequence is byte-reproducible no matter how the pool is
    /// sized (see the crate docs).
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, ServiceError> {
        self.submit_with(spec, JobOptions::default())
    }

    /// Submits one job with explicit [`JobOptions`] (queue lane, deadline).
    /// Blocks for backpressure like [`submit`](Self::submit).
    pub fn submit_with(
        &self,
        spec: JobSpec,
        options: JobOptions,
    ) -> Result<JobHandle, ServiceError> {
        let job_id = self.next_job_id.fetch_add(1, Ordering::SeqCst);
        let seed = spec.seed().unwrap_or_else(|| self.root.fork(job_id).seed());
        let (reply, receiver) = mpsc::channel();
        let shared = Arc::new(JobShared::new(
            options.deadline.map(|budget| Instant::now() + budget),
        ));
        // Count the submission before the push: a shard can pick the job up
        // and settle it the instant `push` returns, and the settled counters
        // must never be observable above `submitted`.
        self.counters.submitted.fetch_add(1, Ordering::SeqCst);
        let affinity = match (&self.cache, &spec) {
            (Some(_), JobSpec::Evolution(s)) => Some(s.task().input.content_hash()),
            _ => None,
        };
        let queued = QueuedJob {
            job_id,
            seed,
            spec,
            affinity,
            bypassed: 0,
            reply,
            shared: Arc::clone(&shared),
        };
        if self.queue.push(queued, options.priority).is_err() {
            self.counters.submitted.fetch_sub(1, Ordering::SeqCst);
            return Err(ServiceError::Shutdown);
        }
        Ok(JobHandle {
            job_id,
            seed,
            receiver,
            received: std::cell::Cell::new(false),
            shared,
        })
    }

    /// Submits a batch in order, returning one handle per spec.  Blocks for
    /// backpressure like [`submit`](Self::submit); the shards drain the queue
    /// concurrently, so submitting arbitrarily many jobs from one thread
    /// cannot deadlock.
    pub fn submit_batch(
        &self,
        specs: impl IntoIterator<Item = JobSpec>,
    ) -> Result<Vec<JobHandle>, ServiceError> {
        specs.into_iter().map(|spec| self.submit(spec)).collect()
    }

    /// Convenience: submits a batch and waits for every result, in
    /// submission order.  A job lost to an abnormal pool death surfaces as
    /// [`ServiceError::JobLost`].
    pub fn run_batch(
        &self,
        specs: impl IntoIterator<Item = JobSpec>,
    ) -> Result<Vec<JobResult>, ServiceError> {
        let handles = self.submit_batch(specs)?;
        handles
            .into_iter()
            .map(|handle| handle.wait().map_err(ServiceError::from))
            .collect()
    }

    /// Test hook: make one shard die **while holding the queue-pickup
    /// lock**, poisoning it — the abnormal-death mode the recovery paths
    /// (and their regression tests) exist for.  Hidden from docs; not for
    /// production use.
    #[doc(hidden)]
    pub fn kill_shard_for_test(&self) {
        self.queue.push_pill();
    }
}

impl Drop for EhwService {
    fn drop(&mut self) {
        // Close the queue: shards finish everything already accepted (the
        // lanes drain even after close) and exit.
        self.queue.close();
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
    }
}

impl std::fmt::Debug for EhwService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EhwService")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .field("queue_depth", &self.queue_depth())
            .field("alive_shards", &self.alive_shards())
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Handles and monitors
// ---------------------------------------------------------------------------

/// A pending job: resolves to its [`JobResult`] via [`wait`](Self::wait).
#[derive(Debug)]
pub struct JobHandle {
    job_id: u64,
    seed: u64,
    receiver: mpsc::Receiver<JobResult>,
    /// Whether [`try_wait`](Self::try_wait) already took the result — lets a
    /// later disconnect be reported as "already taken" instead of being
    /// misdiagnosed as a lost job.
    received: std::cell::Cell<bool>,
    shared: Arc<JobShared>,
}

impl JobHandle {
    /// The id the service assigned at submission (submission order).
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// The effective RNG seed the job runs with (pinned or derived) —
    /// re-running the same spec through a legacy entry point with this seed
    /// reproduces the result byte for byte.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A cloneable observer for this job: cancellation, liveness and the
    /// per-generation progress feed.  Outlives the handle, so a caller can
    /// keep watching (or cancel) after moving the handle into `wait`.
    pub fn monitor(&self) -> JobMonitor {
        JobMonitor {
            job_id: self.job_id,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Requests cooperative cancellation (see [`JobMonitor::cancel`]).
    pub fn cancel(&self) {
        self.shared.control.cancel();
    }

    /// Blocks until the job has settled and returns its result.  Dropping
    /// the service drains the queue, so an accepted job's handle stays
    /// resolvable even after the drop.  `Err(`[`JobLost`]`)` means the whole
    /// shard pool died abnormally before the job could reply — per-job
    /// failure (a panicking job) is still an `Ok` result carrying
    /// [`JobOutput::Failed`].
    ///
    /// # Panics
    /// Panics only on caller error: a previous [`try_wait`](Self::try_wait)
    /// already took the result.
    pub fn wait(self) -> Result<JobResult, JobLost> {
        match self.receiver.recv() {
            Ok(result) => Ok(result),
            Err(_) if self.received.get() => {
                panic!("job result was already taken by a previous try_wait")
            }
            Err(_) => Err(JobLost {
                job_id: self.job_id,
            }),
        }
    }

    /// Returns the result if the job has already settled, without blocking.
    /// `Ok(None)` means "still queued or running"; `Err(`[`JobLost`]`)`
    /// means the result can never arrive (see [`wait`](Self::wait)) — a
    /// poller must stop instead of spinning forever.
    ///
    /// # Panics
    /// Panics only on caller error: a previous `try_wait` already took the
    /// result.
    pub fn try_wait(&self) -> Result<Option<JobResult>, JobLost> {
        match self.receiver.try_recv() {
            Ok(result) => {
                self.received.set(true);
                Ok(Some(result))
            }
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => {
                if self.received.get() {
                    panic!("job result was already taken by a previous try_wait")
                }
                Err(JobLost {
                    job_id: self.job_id,
                })
            }
        }
    }
}

/// A cloneable observer of one job: cancel it, poll whether it is running,
/// and read its per-generation progress feed.  Obtained from
/// [`JobHandle::monitor`]; stays valid after the handle is consumed.
#[derive(Clone)]
pub struct JobMonitor {
    job_id: u64,
    shared: Arc<JobShared>,
}

impl JobMonitor {
    /// The id of the job this monitor observes.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// Requests cooperative cancellation.  The job stops with
    /// [`JobOutput::Cancelled`] at its next generation boundary — or before
    /// it starts, if it is still queued.  Work done so far still counts in
    /// the result envelope.  Idempotent; a no-op once the job has settled.
    pub fn cancel(&self) {
        self.shared.control.cancel();
    }

    /// Whether cancellation has been requested (the job may not have
    /// observed it yet).
    pub fn cancel_requested(&self) -> bool {
        self.shared.control.cancel_requested()
    }

    /// Whether a shard is executing the job right now.
    pub fn is_running(&self) -> bool {
        self.shared.running.load(Ordering::SeqCst)
    }

    /// The progress events recorded so far, starting at index `from`, and
    /// whether the feed is closed (no more events will ever arrive).
    pub fn events_since(&self, from: usize) -> (Vec<JobProgress>, bool) {
        let log = lock_recover(&self.shared.events);
        (log.events.get(from..).unwrap_or(&[]).to_vec(), log.closed)
    }

    /// Blocks until at least one event past `from` exists, the feed closes,
    /// or `timeout` elapses — then returns like
    /// [`events_since`](Self::events_since).
    pub fn wait_events(&self, from: usize, timeout: Duration) -> (Vec<JobProgress>, bool) {
        let deadline = Instant::now() + timeout;
        let mut log = lock_recover(&self.shared.events);
        while log.events.len() <= from && !log.closed {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            if remaining.is_zero() {
                break;
            }
            let (next, timed_out) = wait_timeout_recover(&self.shared.events_cv, log, remaining);
            log = next;
            if timed_out {
                break;
            }
        }
        (log.events.get(from..).unwrap_or(&[]).to_vec(), log.closed)
    }
}

impl std::fmt::Debug for JobMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobMonitor")
            .field("job_id", &self.job_id)
            .field("running", &self.is_running())
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Shard loop
// ---------------------------------------------------------------------------

/// Clears this shard's liveness flag when the shard exits, and — only if the
/// shard is dying **abnormally** and it was the last one — drains the queue
/// so every still-queued handle resolves to [`JobLost`] instead of stalling.
struct ShardGuard {
    index: usize,
    liveness: Arc<Vec<AtomicBool>>,
    queue: Arc<JobQueue>,
    counters: Arc<Counters>,
}

impl Drop for ShardGuard {
    fn drop(&mut self) {
        self.liveness[self.index].store(false, Ordering::SeqCst);
        let any_alive = self
            .liveness
            .iter()
            .any(|alive| alive.load(Ordering::SeqCst));
        if std::thread::panicking() && !any_alive {
            // Drain-time accounting is the only place `lost` is counted:
            // handle-side counting would double-count a job observed through
            // both `try_wait` and `wait`.
            self.queue.close_and_drain(&self.counters);
        }
    }
}

fn shard_loop(
    index: usize,
    queue: &Arc<JobQueue>,
    parallel: ParallelConfig,
    counters: &Arc<Counters>,
    liveness: &Arc<Vec<AtomicBool>>,
    cache: Option<Arc<CrossJobCache>>,
) {
    let _guard = ShardGuard {
        index,
        liveness: Arc::clone(liveness),
        queue: Arc::clone(queue),
        counters: Arc::clone(counters),
    };
    // One platform per array count this shard has served, recycled across
    // jobs.  Shards only ever serialise on queue *pickup*, never on work —
    // and a sibling dying while holding the pickup lock poisons it, which
    // `pop` recovers from instead of abandoning the queue.
    let mut pool: HashMap<usize, EhwPlatform> = HashMap::new();
    // The affinity of the previous job: with the cache on, the shard prefers
    // queued jobs training on the same image (batch-aware routing).
    let mut last_affinity: Option<u64> = None;
    while let Some(QueuedJob {
        job_id,
        seed,
        spec,
        affinity,
        bypassed: _,
        reply,
        shared,
    }) = queue.pop_preferring(last_affinity)
    {
        last_affinity = affinity;
        // A job cancelled (or deadline-expired) while still queued settles
        // without touching a platform: zero evaluations, cancelled output.
        if let Some(kind) = shared.control.stop_reason() {
            counters.cancelled.fetch_add(1, Ordering::SeqCst);
            shared.close_events();
            let _ = reply.send(JobResult {
                job_id,
                seed,
                evaluations: 0,
                stats: Default::default(),
                warm_started: false,
                warm_start_key: None,
                output: JobOutput::Cancelled(kind),
            });
            continue;
        }

        let arrays = spec.arrays_needed();
        let mut platform = pool
            .remove(&arrays)
            .map(|mut platform| {
                platform.reset();
                platform
            })
            .unwrap_or_else(|| EhwPlatform::with_parallel(arrays, parallel));

        // A panicking job must not take the shard (or the queue) down with
        // it: capture the panic, report it as a failed result, and retire
        // the possibly half-mutated platform instead of pooling it.
        shared.running.store(true, Ordering::SeqCst);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            jobs::execute_controlled_cached(
                &mut platform,
                &spec,
                seed,
                &shared.control,
                &mut |event| shared.push_event(event),
                cache.as_ref(),
            )
        }));
        shared.running.store(false, Ordering::SeqCst);
        let result = match outcome {
            Ok(mut result) => {
                result.job_id = job_id;
                pool.insert(arrays, platform);
                result
            }
            Err(panic) => JobResult {
                job_id,
                seed,
                evaluations: 0,
                stats: Default::default(),
                warm_started: false,
                warm_start_key: None,
                // `&*panic`, not `&panic`: the latter unsize-coerces the Box
                // itself into `dyn Any`, making every payload downcast miss.
                output: JobOutput::Failed(panic_message(&*panic)),
            },
        };
        match &result.output {
            JobOutput::Failed(_) => counters.failed.fetch_add(1, Ordering::SeqCst),
            JobOutput::Cancelled(_) => counters.cancelled.fetch_add(1, Ordering::SeqCst),
            _ => counters.completed.fetch_add(1, Ordering::SeqCst),
        };
        shared.close_events();
        // The handle may have been dropped without waiting; that is fine.
        let _ = reply.send(result);
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehw_image::synth;

    fn training_pair(size: usize) -> (ehw_image::image::GrayImage, ehw_image::image::GrayImage) {
        // A deterministic non-trivial pair without pulling in an RNG: learn
        // the gradient from a checkerboard.
        (
            synth::checkerboard(size, size, 4),
            synth::gradient(size, size),
        )
    }

    fn evolution_spec(size: usize, generations: usize) -> JobSpec {
        let (noisy, clean) = training_pair(size);
        JobSpec::evolution(noisy, clean)
            .generations(generations)
            .build()
            .unwrap()
    }

    /// A job that runs until cancelled (in practice: far longer than any
    /// test timeout, polled for cancellation once per generation).
    fn marathon_spec(size: usize) -> JobSpec {
        evolution_spec(size, 1_000_000)
    }

    #[test]
    fn config_validation_rejects_zero_sizes() {
        assert!(matches!(
            EhwService::new(ServiceConfig {
                platforms: 0,
                ..ServiceConfig::new(1)
            }),
            Err(ServiceError::InvalidConfig(_))
        ));
        assert!(matches!(
            ServiceConfig::new(1).workers_per_platform(0).validate(),
            Err(ServiceError::InvalidConfig(_))
        ));
        assert!(matches!(
            ServiceConfig::new(1).queue_depth(0).validate(),
            Err(ServiceError::InvalidConfig(_))
        ));
        assert!(ServiceConfig::new(2).validate().is_ok());
    }

    #[test]
    fn from_env_surfaces_malformed_environment_with_a_descriptive_error() {
        // Scoped env mutation: the value is restored below, and no other
        // test in this binary depends on these variables (job results are
        // worker-count invariant by contract).
        let old = std::env::var(ehw_parallel::WORKERS_ENV).ok();
        std::env::set_var(ehw_parallel::WORKERS_ENV, "not-a-number");
        let err = ServiceConfig::from_env().unwrap_err();
        match &err {
            ServiceError::Environment(env) => {
                assert_eq!(env.var, ehw_parallel::WORKERS_ENV);
                assert_eq!(env.value, "not-a-number");
            }
            other => panic!("expected an environment error, got {other:?}"),
        }
        assert!(err.to_string().contains("EHW_WORKERS"), "{err}");
        match old {
            Some(value) => std::env::set_var(ehw_parallel::WORKERS_ENV, value),
            None => std::env::remove_var(ehw_parallel::WORKERS_ENV),
        }
        // Explicit configs never read the environment, so they were valid
        // throughout.
        assert!(ServiceConfig::new(1).validate().is_ok());
    }

    #[test]
    fn submit_and_wait_roundtrips_every_job_kind() {
        let (noisy, clean) = training_pair(20);
        let service = EhwService::new(ServiceConfig::new(2)).unwrap();
        let specs = vec![
            JobSpec::evolution(noisy.clone(), clean.clone())
                .generations(4)
                .build()
                .unwrap(),
            JobSpec::cascade(noisy.clone(), clean.clone())
                .stages(2)
                .generations(3)
                .build()
                .unwrap(),
            JobSpec::fault_campaign(noisy, clean)
                .recovery_generations(2)
                .build()
                .unwrap(),
        ];
        let results = service.run_batch(specs).unwrap();
        assert_eq!(results.len(), 3);
        for (i, result) in results.iter().enumerate() {
            assert_eq!(result.job_id, i as u64);
            assert!(!result.is_failed());
            assert!(result.evaluations > 0);
        }
        assert!(results[0].as_evolution().is_some());
        assert!(results[1].as_cascade().is_some());
        assert!(results[2].as_campaign().is_some());
        let stats = service.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.cancelled, 0);
        assert_eq!(stats.lost, 0);
    }

    #[test]
    fn derived_seeds_follow_the_root_sequence() {
        let (noisy, clean) = training_pair(16);
        let service = EhwService::new(ServiceConfig::new(1).seed(99)).unwrap();
        let spec = JobSpec::evolution(noisy.clone(), clean.clone())
            .generations(2)
            .build()
            .unwrap();
        let h0 = service.submit(spec.clone()).unwrap();
        let h1 = service.submit(spec).unwrap();
        assert_eq!(h0.job_id(), 0);
        assert_eq!(h1.job_id(), 1);
        assert_eq!(h0.seed(), SeedSequence::new(99).fork(0).seed());
        assert_eq!(h1.seed(), SeedSequence::new(99).fork(1).seed());
        assert_ne!(h0.seed(), h1.seed());
        // Pinned seeds win over derivation.
        let pinned = JobSpec::evolution(noisy, clean)
            .generations(2)
            .seed(1234)
            .build()
            .unwrap();
        let h2 = service.submit(pinned).unwrap();
        assert_eq!(h2.seed(), 1234);
        let results = [h0.wait().unwrap(), h1.wait().unwrap(), h2.wait().unwrap()];
        assert_eq!(results[2].seed, 1234);
        // Different derived seeds explore differently.
        let (a, _) = results[0].as_evolution().unwrap();
        let (b, _) = results[1].as_evolution().unwrap();
        assert_ne!(a.initial_fitness, b.initial_fitness);
    }

    #[test]
    fn identical_submission_sequences_reproduce_byte_identically() {
        let (noisy, clean) = training_pair(20);
        let specs = || {
            vec![
                JobSpec::evolution(noisy.clone(), clean.clone())
                    .generations(3)
                    .build()
                    .unwrap(),
                JobSpec::cascade(noisy.clone(), clean.clone())
                    .stages(2)
                    .generations(2)
                    .build()
                    .unwrap(),
            ]
        };
        let run = |config: ServiceConfig| {
            let service = EhwService::new(config).unwrap();
            service
                .run_batch(specs())
                .unwrap()
                .into_iter()
                .map(|r| {
                    (
                        r.seed,
                        r.evaluations,
                        r.history().to_vec(),
                        r.genotypes()
                            .into_iter()
                            .map(|g| g.encode())
                            .collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let reference = run(ServiceConfig::new(1).seed(7));
        // Pool size and worker count are scheduling only.
        assert_eq!(reference, run(ServiceConfig::new(3).seed(7)));
        assert_eq!(
            reference,
            run(ServiceConfig::new(2).workers_per_platform(4).seed(7))
        );
        // The root seed is load-bearing.
        assert_ne!(reference, run(ServiceConfig::new(1).seed(8)));
    }

    #[test]
    fn platforms_are_recycled_without_state_leaks() {
        // A campaign job (which injects faults into its platform's snapshot
        // space and reconfigures arrays) followed by an evolution job of the
        // same shape on the same single shard must score identically to the
        // evolution job on a fresh service.
        let (noisy, clean) = training_pair(16);
        let campaign = JobSpec::fault_campaign(noisy.clone(), clean.clone())
            .recovery_generations(2)
            .seed(5)
            .build()
            .unwrap();
        let evolution = || {
            JobSpec::evolution(noisy.clone(), clean.clone())
                .generations(3)
                .seed(6)
                .build()
                .unwrap()
        };
        let fresh = EhwService::new(ServiceConfig::new(1)).unwrap();
        let expected = fresh.submit(evolution()).unwrap().wait().unwrap();
        let recycled = EhwService::new(ServiceConfig::new(1)).unwrap();
        let _ = recycled.submit(campaign).unwrap().wait().unwrap();
        let got = recycled.submit(evolution()).unwrap().wait().unwrap();
        let (a, _) = expected.as_evolution().unwrap();
        let (b, _) = got.as_evolution().unwrap();
        assert_eq!(a.best_genotype.encode(), b.best_genotype.encode());
        assert_eq!(a.history, b.history);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn try_wait_is_nonblocking_and_eventually_resolves() {
        let (noisy, clean) = training_pair(16);
        let service = EhwService::new(ServiceConfig::new(1)).unwrap();
        let handle = service
            .submit(
                JobSpec::evolution(noisy, clean)
                    .generations(2)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        loop {
            if let Some(result) = handle.try_wait().unwrap() {
                assert!(!result.is_failed());
                break;
            }
            std::thread::yield_now();
        }
    }

    // -- queue unit tests ---------------------------------------------------

    fn dummy_queued_job(job_id: u64) -> (QueuedJob, mpsc::Receiver<JobResult>) {
        let (reply, receiver) = mpsc::channel();
        (
            QueuedJob {
                job_id,
                seed: job_id,
                spec: evolution_spec(8, 1),
                affinity: None,
                bypassed: 0,
                reply,
                shared: Arc::new(JobShared::new(None)),
            },
            receiver,
        )
    }

    #[test]
    fn queue_drains_lanes_in_priority_order_fifo_within_a_lane() {
        let queue = JobQueue::new(8);
        let order = [
            (0, Priority::Low),
            (1, Priority::Normal),
            (2, Priority::High),
            (3, Priority::Low),
            (4, Priority::High),
        ];
        let mut receivers = Vec::new();
        for (id, priority) in order {
            let (job, receiver) = dummy_queued_job(id);
            queue.push(job, priority).unwrap();
            receivers.push(receiver);
        }
        let picked: Vec<u64> = (0..order.len())
            .map(|_| queue.pop().unwrap().job_id)
            .collect();
        // High lane first (FIFO: 2 then 4), then Normal, then Low (0 then 3).
        assert_eq!(picked, vec![2, 4, 1, 0, 3]);
        queue.close();
        assert!(queue.pop().is_none());
    }

    #[test]
    fn affinity_pickup_prefers_matching_jobs_but_never_crosses_lanes() {
        let queue = JobQueue::new(8);
        let mut receivers = Vec::new();
        for (id, affinity) in [(0, Some(7)), (1, Some(9)), (2, Some(7))] {
            let (mut job, receiver) = dummy_queued_job(id);
            job.affinity = affinity;
            queue.push(job, Priority::Normal).unwrap();
            receivers.push(receiver);
        }
        // A high-lane job outranks any affinity match in a lower lane.
        let (high, receiver) = dummy_queued_job(3);
        queue.push(high, Priority::High).unwrap();
        receivers.push(receiver);
        assert_eq!(queue.pop_preferring(Some(9)).unwrap().job_id, 3);
        // Within the lane, the hint pulls the matching job ahead of the
        // front; with no match left for the hint, pickup falls back to FIFO.
        assert_eq!(queue.pop_preferring(Some(9)).unwrap().job_id, 1);
        assert_eq!(queue.pop_preferring(Some(9)).unwrap().job_id, 0);
        assert_eq!(queue.pop().unwrap().job_id, 2);
    }

    #[test]
    fn affinity_bypassing_is_bounded_so_the_lane_front_cannot_starve() {
        let queue = JobQueue::new(64);
        let mut receivers = Vec::new();
        // A non-matching job at the front, then a sustained stream of
        // matching jobs behind it — the adversarial schedule that would
        // starve the front unboundedly without the bypass cap.
        let (front, receiver) = dummy_queued_job(0);
        queue.push(front, Priority::Normal).unwrap();
        receivers.push(receiver);
        for id in 1..=AFFINITY_BYPASS_LIMIT as u64 + 3 {
            let (mut job, receiver) = dummy_queued_job(id);
            job.affinity = Some(7);
            queue.push(job, Priority::Normal).unwrap();
            receivers.push(receiver);
        }
        // The first LIMIT pops honor the affinity hint...
        for pop in 0..AFFINITY_BYPASS_LIMIT as u64 {
            assert_eq!(queue.pop_preferring(Some(7)).unwrap().job_id, pop + 1);
        }
        // ...then the bypassed front is taken despite a live match behind it.
        assert_eq!(queue.pop_preferring(Some(7)).unwrap().job_id, 0);
        assert_eq!(
            queue.pop_preferring(Some(7)).unwrap().job_id,
            AFFINITY_BYPASS_LIMIT as u64 + 1
        );
    }

    #[test]
    fn a_deadline_carrying_front_job_is_never_bypassed() {
        let queue = JobQueue::new(8);
        let (reply, _receiver) = mpsc::channel();
        let deadline_front = QueuedJob {
            job_id: 0,
            seed: 0,
            spec: evolution_spec(8, 1),
            affinity: None,
            bypassed: 0,
            reply,
            shared: Arc::new(JobShared::new(Some(
                Instant::now() + Duration::from_secs(3600),
            ))),
        };
        queue.push(deadline_front, Priority::Normal).unwrap();
        let (mut matching, _receiver2) = dummy_queued_job(1);
        matching.affinity = Some(7);
        queue.push(matching, Priority::Normal).unwrap();
        // The hint matches job 1, but job 0 could expire while queued — FIFO
        // wins immediately, without burning through the bypass budget.
        assert_eq!(queue.pop_preferring(Some(7)).unwrap().job_id, 0);
        assert_eq!(queue.pop_preferring(Some(7)).unwrap().job_id, 1);
    }

    #[test]
    fn queue_pickup_survives_a_poisoned_lock() {
        let queue = JobQueue::new(8);
        let (job, _receiver) = dummy_queued_job(7);
        queue.push(job, Priority::Normal).unwrap();
        queue.push_pill();
        // The pill panics inside `pop` while the pickup lock is held,
        // poisoning it — exactly what a dying shard does to its siblings.
        let died = catch_unwind(AssertUnwindSafe(|| queue.pop()));
        assert!(died.is_err());
        assert!(queue.state.is_poisoned());
        // A surviving shard recovers the lock and keeps draining.
        let survivor = queue.pop().expect("job survives the poisoned lock");
        assert_eq!(survivor.job_id, 7);
        assert_eq!(queue.depth(), 0);
    }

    // -- shard-death recovery ----------------------------------------------

    #[test]
    fn killing_one_shard_leaves_the_rest_of_the_pool_serving() {
        let service = EhwService::new(ServiceConfig::new(2).queue_depth(8)).unwrap();
        service.kill_shard_for_test();
        // The pill is picked up by an idle shard almost immediately; wait
        // until exactly one shard reports dead.
        while service.alive_shards() != 1 {
            std::thread::yield_now();
        }
        assert_eq!(
            service
                .shard_liveness()
                .iter()
                .filter(|alive| **alive)
                .count(),
            1
        );
        // The surviving shard recovers the poisoned pickup lock and drains
        // the whole batch.
        let results = service
            .run_batch((0..4).map(|_| evolution_spec(12, 2)))
            .unwrap();
        assert_eq!(results.len(), 4);
        for result in &results {
            assert!(!result.is_failed());
            assert!(result.evaluations > 0);
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.lost, 0);
    }

    #[test]
    fn a_dead_pool_degrades_to_job_lost_not_a_stall() {
        let service = EhwService::new(ServiceConfig::new(1).queue_depth(8)).unwrap();
        // Occupy the only shard with a cancellable marathon...
        let blocker = service.submit(marathon_spec(8)).unwrap();
        let monitor = blocker.monitor();
        let (events, _) = monitor.wait_events(0, Duration::from_secs(30));
        assert!(!events.is_empty(), "the blocker never started");
        // ...queue two victims behind it, then a poison pill at the head.
        let victim_a = service.submit(evolution_spec(8, 2)).unwrap();
        let victim_b = service.submit(evolution_spec(8, 2)).unwrap();
        service.kill_shard_for_test();
        monitor.cancel();
        // The blocker settles as cancelled; the shard then picks the pill,
        // dies, and — being the last shard — drains the queue so the
        // victims resolve to JobLost instead of blocking forever.
        let blocked = blocker.wait().unwrap();
        assert!(blocked.is_cancelled());
        assert_eq!(
            victim_a.wait().unwrap_err(),
            JobLost { job_id: 1 },
            "queued job must resolve to JobLost when the pool dies"
        );
        assert_eq!(victim_b.wait().unwrap_err(), JobLost { job_id: 2 });
        assert_eq!(service.alive_shards(), 0);
        let stats = service.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.lost, 2);
        assert_eq!(stats.completed, 0);
        // The drain closed the queue: new submissions are refused, loudly.
        assert_eq!(
            service.submit(evolution_spec(8, 1)).err(),
            Some(ServiceError::Shutdown)
        );
    }

    // -- cancellation, deadlines, progress ----------------------------------

    #[test]
    fn cancel_mid_run_settles_within_a_generation_with_partial_work() {
        let service = EhwService::new(ServiceConfig::new(1)).unwrap();
        let handle = service.submit(marathon_spec(8)).unwrap();
        let monitor = handle.monitor();
        let (events, closed) = monitor.wait_events(0, Duration::from_secs(30));
        assert!(!events.is_empty(), "no progress event arrived");
        assert!(!closed);
        monitor.cancel();
        let result = handle.wait().unwrap();
        assert!(result.is_cancelled());
        assert_eq!(result.cancel_kind(), Some(CancelKind::Requested));
        assert!(result.evaluations > 0, "partial work still counts");
        let stats = service.stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.completed, 0);
        // The feed is closed once the job settles.
        let (_, closed) = monitor.events_since(0);
        assert!(closed);
    }

    #[test]
    fn cancel_before_start_settles_with_zero_evaluations() {
        let service = EhwService::new(ServiceConfig::new(1).queue_depth(4)).unwrap();
        let blocker = service.submit(marathon_spec(8)).unwrap();
        let blocker_monitor = blocker.monitor();
        let (events, _) = blocker_monitor.wait_events(0, Duration::from_secs(30));
        assert!(!events.is_empty(), "the blocker never started");
        let victim = service.submit(evolution_spec(8, 50)).unwrap();
        victim.cancel();
        blocker_monitor.cancel();
        assert!(blocker.wait().unwrap().is_cancelled());
        let result = victim.wait().unwrap();
        assert_eq!(result.cancel_kind(), Some(CancelKind::Requested));
        assert_eq!(result.evaluations, 0, "never touched a platform");
        assert_eq!(service.stats().cancelled, 2);
    }

    #[test]
    fn an_expired_deadline_cancels_the_job() {
        let service = EhwService::new(ServiceConfig::new(1)).unwrap();
        // Already expired at submission: cancelled at pickup, zero work.
        let instant = service
            .submit_with(
                evolution_spec(8, 50),
                JobOptions::default().deadline(Duration::ZERO),
            )
            .unwrap();
        let result = instant.wait().unwrap();
        assert_eq!(result.cancel_kind(), Some(CancelKind::DeadlineExpired));
        assert_eq!(result.evaluations, 0);
        // A budget shorter than the run: expires at a generation boundary
        // (or at pickup under extreme scheduling delay) — either way the
        // job settles as deadline-expired, never runs to completion.
        let budget = service
            .submit_with(
                marathon_spec(8),
                JobOptions::default().deadline(Duration::from_millis(50)),
            )
            .unwrap();
        let result = budget.wait().unwrap();
        assert_eq!(result.cancel_kind(), Some(CancelKind::DeadlineExpired));
        assert_eq!(service.stats().cancelled, 2);
    }

    #[test]
    fn progress_events_stream_one_per_generation_and_close() {
        let service = EhwService::new(ServiceConfig::new(1)).unwrap();
        let handle = service.submit(evolution_spec(12, 5)).unwrap();
        let monitor = handle.monitor();
        let result = handle.wait().unwrap();
        assert!(!result.is_failed());
        let (events, closed) = monitor.events_since(0);
        assert!(closed);
        assert_eq!(events.len(), 5);
        for (i, event) in events.iter().enumerate() {
            assert_eq!(event.generation, i);
            assert!(event.best_fitness.is_some());
        }
        // Cursors make the feed incrementally consumable.
        let (tail, closed) = monitor.wait_events(3, Duration::from_secs(5));
        assert!(closed);
        assert_eq!(tail.len(), 2);
    }

    #[test]
    fn priority_lanes_reorder_scheduling_but_not_results() {
        // The same specs submitted high-priority-first and low-priority-first
        // produce byte-identical per-job results: seeds bind at submission.
        let run = |priority: Priority| {
            let service = EhwService::new(ServiceConfig::new(1).seed(11)).unwrap();
            let handles: Vec<JobHandle> = (0..3)
                .map(|_| {
                    service
                        .submit_with(evolution_spec(12, 2), JobOptions::with_priority(priority))
                        .unwrap()
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    let r = h.wait().unwrap();
                    (r.seed, r.evaluations, r.history().to_vec())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(Priority::High), run(Priority::Low));
    }

    #[test]
    fn stats_count_failed_jobs_separately_from_completed() {
        let service = EhwService::new(ServiceConfig::new(1)).unwrap();
        let ok = service.submit(evolution_spec(12, 2)).unwrap();
        let bad = service
            .submit(jobs::doomed_spec_for_test(training_pair(12)))
            .unwrap();
        assert!(!ok.wait().unwrap().is_failed());
        let failed = bad.wait().unwrap();
        assert!(failed.is_failed());
        assert!(failed.failure().unwrap().contains("offspring"));
        let stats = service.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 1);
    }
}
