//! Job-oriented service front-end over a sharded platform pool.
//!
//! The paper's architecture is a shared reconfigurable fabric time-multiplexed
//! across independent evolution tasks; this crate is the serving layer that
//! story maps onto.  Every workload the platform supports — single-filter and
//! parallel evolution, cascades, fault campaigns — is described by one typed
//! request ([`JobSpec`], re-exported from `ehw_platform::jobs`) and submitted
//! to an [`EhwService`], which owns a pool of [`EhwPlatform`] shards and a
//! bounded job queue:
//!
//! ```no_run
//! use ehw_service::{EhwService, JobSpec, ServiceConfig};
//! # let (noisy, clean) = (ehw_image::synth::gradient(32, 32), ehw_image::synth::gradient(32, 32));
//! let service = EhwService::new(ServiceConfig::new(2)).expect("valid config");
//! let spec = JobSpec::evolution(noisy, clean)
//!     .generations(200)
//!     .build()
//!     .expect("valid spec");
//! let handle = service.submit(spec).expect("service accepts jobs");
//! let result = handle.wait();
//! println!("best fitness: {:?}", result.final_fitness());
//! ```
//!
//! # Determinism contract
//!
//! A job's outcome is a pure function of its spec and its effective seed.
//! The seed is either pinned in the spec or derived from the service root as
//! `SeedSequence::new(config.seed).fork(job_id)`, and job ids number
//! submissions in order — so a batch of N submitted jobs returns
//! byte-identical results regardless of the platform count, the queue order,
//! or the worker configuration.  `tests/property_service_equivalence.rs`
//! pins this, together with byte-identity against the legacy entry points.
//!
//! # Backpressure
//!
//! The queue holds at most [`ServiceConfig::queue_depth`] pending jobs;
//! [`EhwService::submit`] **blocks** once it is full and never drops a job.
//! Every submitted job resolves its [`JobHandle`] — even if it panics while
//! executing, in which case the result carries [`JobOutput::Failed`] and the
//! shard survives to serve the rest of the queue.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use ehw_parallel::{EnvConfigError, ParallelConfig};
use ehw_platform::jobs;
use ehw_platform::platform::EhwPlatform;
use rand::SeedSequence;

pub use ehw_platform::jobs::{
    CascadeBuilder, CascadeSpec, EvolutionBuilder, EvolutionSpec, FaultCampaignBuilder,
    FaultCampaignSpec, JobOutput, JobResult, JobSpec, SpecError,
};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Sizing of an [`EhwService`]: how many platform shards it owns, how much
/// host parallelism each shard may use, and how deep the submission queue is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of platform shards (each owns its platforms and executes one
    /// job at a time).
    pub platforms: usize,
    /// Worker threads each shard's platform uses for intra-job parallelism
    /// (candidate batches, campaign positions).  Scheduling only: results
    /// are byte-identical at any value.
    pub workers_per_platform: usize,
    /// Work-items-per-chunk for the shards' intra-job parallelism (0 =
    /// auto).  Scheduling only, like `workers_per_platform`;
    /// [`from_env`](Self::from_env) fills it from a validated `EHW_CHUNK`.
    pub chunk: usize,
    /// Maximum number of submitted-but-not-yet-started jobs; a full queue
    /// blocks [`EhwService::submit`] (backpressure) instead of dropping.
    pub queue_depth: usize,
    /// Root seed jobs without a pinned seed derive theirs from (job `n` runs
    /// with `SeedSequence::new(seed).fork(n)`).
    pub seed: u64,
}

impl ServiceConfig {
    /// A configuration with `platforms` shards, one worker per shard, auto
    /// chunking, a queue depth of twice the shard count and seed 0.  Fully
    /// explicit — nothing is read from the environment.
    pub fn new(platforms: usize) -> Self {
        ServiceConfig {
            platforms,
            workers_per_platform: 1,
            chunk: 0,
            queue_depth: platforms.saturating_mul(2).max(1),
            seed: 0,
        }
    }

    /// A configuration sized from the environment: one shard, with
    /// `EHW_WORKERS` / `EHW_CHUNK` **validated** for the per-shard worker
    /// count and chunk size — a malformed variable is a deployment error and
    /// comes back as [`ServiceError::Environment`], never a silent default.
    /// This is the satellite contract on top of the legacy
    /// [`ParallelConfig::from_env`] fallback behaviour, which the experiment
    /// binaries keep.
    pub fn from_env() -> Result<Self, ServiceError> {
        let parallel = ParallelConfig::try_from_env().map_err(ServiceError::Environment)?;
        Ok(ServiceConfig {
            workers_per_platform: parallel.workers,
            chunk: parallel.chunk,
            ..Self::new(1)
        })
    }

    /// Sets the per-shard worker count.
    pub fn workers_per_platform(mut self, workers: usize) -> Self {
        self.workers_per_platform = workers;
        self
    }

    /// Sets the submission queue depth.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the sizing of the configuration.  The environment is only
    /// consulted — and validated, surfacing malformed `EHW_WORKERS` /
    /// `EHW_CHUNK` as [`ServiceError::Environment`] — by
    /// [`from_env`](Self::from_env); an explicitly constructed config never
    /// reads it, so binaries with their own flag handling keep working
    /// whatever the environment contains.
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.platforms == 0 {
            return Err(ServiceError::InvalidConfig(
                "platforms must be at least 1".into(),
            ));
        }
        if self.workers_per_platform == 0 {
            return Err(ServiceError::InvalidConfig(
                "workers_per_platform must be at least 1".into(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(ServiceError::InvalidConfig(
                "queue_depth must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Why the service rejected a configuration or a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// A sizing field is out of range.
    InvalidConfig(String),
    /// The process environment carries a malformed parallelism variable.
    Environment(EnvConfigError),
    /// The service is shutting down and no longer accepts jobs.
    Shutdown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::InvalidConfig(why) => write!(f, "invalid service config: {why}"),
            ServiceError::Environment(err) => write!(f, "invalid environment: {err}"),
            ServiceError::Shutdown => write!(f, "the service is shut down"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Environment(err) => Some(err),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------------

/// Monotonic counters of a service's lifetime (see [`EhwService::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Jobs accepted by [`EhwService::submit`].
    pub submitted: u64,
    /// Jobs whose result has been produced (including failed ones).
    pub completed: u64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
}

struct QueuedJob {
    job_id: u64,
    seed: u64,
    spec: JobSpec,
    reply: mpsc::Sender<JobResult>,
}

/// The serving front-end: a sharded pool of [`EhwPlatform`]s consuming a
/// bounded queue of [`JobSpec`]s.
///
/// Each shard is one OS thread owning its platforms (one per array count it
/// has seen, recycled via [`EhwPlatform::reset`] so no state leaks between
/// jobs) and executing one job at a time through the single
/// [`jobs::execute`] path; intra-job parallelism is governed by
/// [`ServiceConfig::workers_per_platform`].  Dropping the service is a
/// **graceful drain**, not a cancel: the queue stops accepting new jobs,
/// every job already accepted still executes, the shards are joined, and
/// every issued [`JobHandle`] remains resolvable (results are buffered in
/// the handle's channel).  There is no cancellation primitive yet — see the
/// ROADMAP's serving next steps.
pub struct EhwService {
    sender: Option<mpsc::SyncSender<QueuedJob>>,
    shards: Vec<JoinHandle<()>>,
    root: SeedSequence,
    next_job_id: AtomicU64,
    counters: Arc<Counters>,
    config: ServiceConfig,
}

impl EhwService {
    /// Validates the configuration and starts the shard threads.
    pub fn new(config: ServiceConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        let parallel = ParallelConfig {
            workers: config.workers_per_platform,
            chunk: config.chunk,
        };
        let (sender, receiver) = mpsc::sync_channel::<QueuedJob>(config.queue_depth);
        let receiver = Arc::new(Mutex::new(receiver));
        let counters = Arc::new(Counters::default());
        let shards = (0..config.platforms)
            .map(|shard| {
                let receiver = Arc::clone(&receiver);
                let counters = Arc::clone(&counters);
                std::thread::Builder::new()
                    .name(format!("ehw-shard-{shard}"))
                    .spawn(move || shard_loop(&receiver, parallel, &counters))
                    .expect("spawn shard thread")
            })
            .collect();
        Ok(EhwService {
            sender: Some(sender),
            shards,
            root: SeedSequence::new(config.seed),
            next_job_id: AtomicU64::new(0),
            counters,
            config,
        })
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Lifetime counters: jobs submitted and completed so far.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.counters.submitted.load(Ordering::SeqCst),
            completed: self.counters.completed.load(Ordering::SeqCst),
        }
    }

    /// Submits one job, blocking while the queue is at
    /// [`ServiceConfig::queue_depth`] (backpressure — jobs are never
    /// dropped).  Returns a handle resolving to the job's [`JobResult`].
    ///
    /// The job id numbers submissions in order; the effective seed is the
    /// spec's pinned seed or `root.fork(job_id)`, so a deterministic
    /// submission sequence is byte-reproducible no matter how the pool is
    /// sized (see the crate docs).
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, ServiceError> {
        let job_id = self.next_job_id.fetch_add(1, Ordering::SeqCst);
        let seed = spec.seed().unwrap_or_else(|| self.root.fork(job_id).seed());
        let (reply, receiver) = mpsc::channel();
        // Count the submission before the send: a shard can pick the job up
        // and complete it the instant `send` returns, and `completed` must
        // never be observable above `submitted`.
        self.counters.submitted.fetch_add(1, Ordering::SeqCst);
        if self
            .sender
            .as_ref()
            .expect("sender lives as long as the service")
            .send(QueuedJob {
                job_id,
                seed,
                spec,
                reply,
            })
            .is_err()
        {
            self.counters.submitted.fetch_sub(1, Ordering::SeqCst);
            return Err(ServiceError::Shutdown);
        }
        Ok(JobHandle {
            job_id,
            seed,
            receiver,
            received: std::cell::Cell::new(false),
        })
    }

    /// Submits a batch in order, returning one handle per spec.  Blocks for
    /// backpressure like [`submit`](Self::submit); the shards drain the queue
    /// concurrently, so submitting arbitrarily many jobs from one thread
    /// cannot deadlock.
    pub fn submit_batch(
        &self,
        specs: impl IntoIterator<Item = JobSpec>,
    ) -> Result<Vec<JobHandle>, ServiceError> {
        specs.into_iter().map(|spec| self.submit(spec)).collect()
    }

    /// Convenience: submits a batch and waits for every result, in
    /// submission order.
    pub fn run_batch(
        &self,
        specs: impl IntoIterator<Item = JobSpec>,
    ) -> Result<Vec<JobResult>, ServiceError> {
        let handles = self.submit_batch(specs)?;
        Ok(handles.into_iter().map(JobHandle::wait).collect())
    }
}

impl Drop for EhwService {
    fn drop(&mut self) {
        // Disconnect the queue: shards finish what is in flight and exit.
        self.sender.take();
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
    }
}

impl std::fmt::Debug for EhwService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EhwService")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// A pending job: resolves to its [`JobResult`] via [`wait`](Self::wait).
#[derive(Debug)]
pub struct JobHandle {
    job_id: u64,
    seed: u64,
    receiver: mpsc::Receiver<JobResult>,
    /// Whether [`try_wait`](Self::try_wait) already took the result — lets a
    /// later disconnect be reported as "already taken" instead of "service
    /// dropped".
    received: std::cell::Cell<bool>,
}

impl JobHandle {
    /// The id the service assigned at submission (submission order).
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// The effective RNG seed the job runs with (pinned or derived) —
    /// re-running the same spec through a legacy entry point with this seed
    /// reproduces the result byte for byte.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Blocks until the job has executed and returns its result.  Dropping
    /// the service drains the queue, so an accepted job's handle stays
    /// resolvable even after the drop.
    ///
    /// # Panics
    /// Panics if the result can never arrive: the executing shard died
    /// abnormally, or a previous [`try_wait`](Self::try_wait) already took
    /// the result.
    pub fn wait(self) -> JobResult {
        match self.receiver.recv() {
            Ok(result) => result,
            Err(_) if self.received.get() => {
                panic!("job result was already taken by a previous try_wait")
            }
            Err(_) => panic!("the shard executing this job died before replying"),
        }
    }

    /// Returns the result if the job has already finished, without blocking.
    ///
    /// # Panics
    /// Panics if the result can never arrive: the executing shard died
    /// abnormally, or a previous `try_wait` already took the result — a
    /// poller would otherwise spin forever on `None`.
    pub fn try_wait(&self) -> Option<JobResult> {
        match self.receiver.try_recv() {
            Ok(result) => {
                self.received.set(true);
                Some(result)
            }
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                if self.received.get() {
                    panic!("job result was already taken by a previous try_wait")
                }
                panic!("the shard executing this job died before replying")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shard loop
// ---------------------------------------------------------------------------

fn shard_loop(
    receiver: &Mutex<mpsc::Receiver<QueuedJob>>,
    parallel: ParallelConfig,
    counters: &Counters,
) {
    // One platform per array count this shard has served, recycled across
    // jobs.  Holding the queue lock across `recv` is deliberate: exactly one
    // idle shard waits at a time, hands the lock on as soon as it has taken a
    // job, and executes outside the lock — shards only ever serialise on
    // queue *pickup*, never on work.
    let mut pool: HashMap<usize, EhwPlatform> = HashMap::new();
    loop {
        let job = match receiver.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // another shard panicked while holding the lock
        };
        let Ok(QueuedJob {
            job_id,
            seed,
            spec,
            reply,
        }) = job
        else {
            return; // queue disconnected: the service is shutting down
        };

        let arrays = spec.arrays_needed();
        let mut platform = pool
            .remove(&arrays)
            .map(|mut platform| {
                platform.reset();
                platform
            })
            .unwrap_or_else(|| EhwPlatform::with_parallel(arrays, parallel));

        // A panicking job must not take the shard (or the queue) down with
        // it: capture the panic, report it as a failed result, and retire
        // the possibly half-mutated platform instead of pooling it.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            jobs::execute(&mut platform, &spec, seed)
        }));
        let result = match outcome {
            Ok(mut result) => {
                result.job_id = job_id;
                pool.insert(arrays, platform);
                result
            }
            Err(panic) => JobResult {
                job_id,
                seed,
                evaluations: 0,
                stats: Default::default(),
                output: JobOutput::Failed(panic_message(&panic)),
            },
        };
        counters.completed.fetch_add(1, Ordering::SeqCst);
        // The handle may have been dropped without waiting; that is fine.
        let _ = reply.send(result);
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehw_image::synth;

    fn training_pair(size: usize) -> (ehw_image::image::GrayImage, ehw_image::image::GrayImage) {
        // A deterministic non-trivial pair without pulling in an RNG: learn
        // the gradient from a checkerboard.
        (
            synth::checkerboard(size, size, 4),
            synth::gradient(size, size),
        )
    }

    #[test]
    fn config_validation_rejects_zero_sizes() {
        assert!(matches!(
            EhwService::new(ServiceConfig {
                platforms: 0,
                ..ServiceConfig::new(1)
            }),
            Err(ServiceError::InvalidConfig(_))
        ));
        assert!(matches!(
            ServiceConfig::new(1).workers_per_platform(0).validate(),
            Err(ServiceError::InvalidConfig(_))
        ));
        assert!(matches!(
            ServiceConfig::new(1).queue_depth(0).validate(),
            Err(ServiceError::InvalidConfig(_))
        ));
        assert!(ServiceConfig::new(2).validate().is_ok());
    }

    #[test]
    fn from_env_surfaces_malformed_environment_with_a_descriptive_error() {
        // Scoped env mutation: the value is restored below, and no other
        // test in this binary depends on these variables (job results are
        // worker-count invariant by contract).
        let old = std::env::var(ehw_parallel::WORKERS_ENV).ok();
        std::env::set_var(ehw_parallel::WORKERS_ENV, "not-a-number");
        let err = ServiceConfig::from_env().unwrap_err();
        match &err {
            ServiceError::Environment(env) => {
                assert_eq!(env.var, ehw_parallel::WORKERS_ENV);
                assert_eq!(env.value, "not-a-number");
            }
            other => panic!("expected an environment error, got {other:?}"),
        }
        assert!(err.to_string().contains("EHW_WORKERS"), "{err}");
        match old {
            Some(value) => std::env::set_var(ehw_parallel::WORKERS_ENV, value),
            None => std::env::remove_var(ehw_parallel::WORKERS_ENV),
        }
        // Explicit configs never read the environment, so they were valid
        // throughout.
        assert!(ServiceConfig::new(1).validate().is_ok());
    }

    #[test]
    fn submit_and_wait_roundtrips_every_job_kind() {
        let (noisy, clean) = training_pair(20);
        let service = EhwService::new(ServiceConfig::new(2)).unwrap();
        let specs = vec![
            JobSpec::evolution(noisy.clone(), clean.clone())
                .generations(4)
                .build()
                .unwrap(),
            JobSpec::cascade(noisy.clone(), clean.clone())
                .stages(2)
                .generations(3)
                .build()
                .unwrap(),
            JobSpec::fault_campaign(noisy, clean)
                .recovery_generations(2)
                .build()
                .unwrap(),
        ];
        let results = service.run_batch(specs).unwrap();
        assert_eq!(results.len(), 3);
        for (i, result) in results.iter().enumerate() {
            assert_eq!(result.job_id, i as u64);
            assert!(!result.is_failed());
            assert!(result.evaluations > 0);
        }
        assert!(results[0].as_evolution().is_some());
        assert!(results[1].as_cascade().is_some());
        assert!(results[2].as_campaign().is_some());
        let stats = service.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
    }

    #[test]
    fn derived_seeds_follow_the_root_sequence() {
        let (noisy, clean) = training_pair(16);
        let service = EhwService::new(ServiceConfig::new(1).seed(99)).unwrap();
        let spec = JobSpec::evolution(noisy.clone(), clean.clone())
            .generations(2)
            .build()
            .unwrap();
        let h0 = service.submit(spec.clone()).unwrap();
        let h1 = service.submit(spec).unwrap();
        assert_eq!(h0.job_id(), 0);
        assert_eq!(h1.job_id(), 1);
        assert_eq!(h0.seed(), SeedSequence::new(99).fork(0).seed());
        assert_eq!(h1.seed(), SeedSequence::new(99).fork(1).seed());
        assert_ne!(h0.seed(), h1.seed());
        // Pinned seeds win over derivation.
        let pinned = JobSpec::evolution(noisy, clean)
            .generations(2)
            .seed(1234)
            .build()
            .unwrap();
        let h2 = service.submit(pinned).unwrap();
        assert_eq!(h2.seed(), 1234);
        let results = [h0.wait(), h1.wait(), h2.wait()];
        assert_eq!(results[2].seed, 1234);
        // Different derived seeds explore differently.
        let (a, _) = results[0].as_evolution().unwrap();
        let (b, _) = results[1].as_evolution().unwrap();
        assert_ne!(a.initial_fitness, b.initial_fitness);
    }

    #[test]
    fn identical_submission_sequences_reproduce_byte_identically() {
        let (noisy, clean) = training_pair(20);
        let specs = || {
            vec![
                JobSpec::evolution(noisy.clone(), clean.clone())
                    .generations(3)
                    .build()
                    .unwrap(),
                JobSpec::cascade(noisy.clone(), clean.clone())
                    .stages(2)
                    .generations(2)
                    .build()
                    .unwrap(),
            ]
        };
        let run = |config: ServiceConfig| {
            let service = EhwService::new(config).unwrap();
            service
                .run_batch(specs())
                .unwrap()
                .into_iter()
                .map(|r| {
                    (
                        r.seed,
                        r.evaluations,
                        r.history().to_vec(),
                        r.genotypes()
                            .into_iter()
                            .map(|g| g.encode())
                            .collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let reference = run(ServiceConfig::new(1).seed(7));
        // Pool size and worker count are scheduling only.
        assert_eq!(reference, run(ServiceConfig::new(3).seed(7)));
        assert_eq!(
            reference,
            run(ServiceConfig::new(2).workers_per_platform(4).seed(7))
        );
        // The root seed is load-bearing.
        assert_ne!(reference, run(ServiceConfig::new(1).seed(8)));
    }

    #[test]
    fn platforms_are_recycled_without_state_leaks() {
        // A campaign job (which injects faults into its platform's snapshot
        // space and reconfigures arrays) followed by an evolution job of the
        // same shape on the same single shard must score identically to the
        // evolution job on a fresh service.
        let (noisy, clean) = training_pair(16);
        let campaign = JobSpec::fault_campaign(noisy.clone(), clean.clone())
            .recovery_generations(2)
            .seed(5)
            .build()
            .unwrap();
        let evolution = || {
            JobSpec::evolution(noisy.clone(), clean.clone())
                .generations(3)
                .seed(6)
                .build()
                .unwrap()
        };
        let fresh = EhwService::new(ServiceConfig::new(1)).unwrap();
        let expected = fresh.submit(evolution()).unwrap().wait();
        let recycled = EhwService::new(ServiceConfig::new(1)).unwrap();
        let _ = recycled.submit(campaign).unwrap().wait();
        let got = recycled.submit(evolution()).unwrap().wait();
        let (a, _) = expected.as_evolution().unwrap();
        let (b, _) = got.as_evolution().unwrap();
        assert_eq!(a.best_genotype.encode(), b.best_genotype.encode());
        assert_eq!(a.history, b.history);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn try_wait_is_nonblocking_and_eventually_resolves() {
        let (noisy, clean) = training_pair(16);
        let service = EhwService::new(ServiceConfig::new(1)).unwrap();
        let handle = service
            .submit(
                JobSpec::evolution(noisy, clean)
                    .generations(2)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        loop {
            if let Some(result) = handle.try_wait() {
                assert!(!result.is_failed());
                break;
            }
            std::thread::yield_now();
        }
    }
}
