//! Drift detection on a sliding calibration window.
//!
//! The detector watches the incumbent filter's per-frame fitness (aggregated
//! MAE against the clean reference; lower is better).  Once `window` frames
//! have been observed it latches their fitness sum as the *baseline* — the
//! level the filter achieved on the distribution it was trained for.  From
//! then on it compares the sliding window sum against the baseline: when
//!
//! ```text
//! window_sum * 100 > baseline_sum * threshold_pct
//! ```
//!
//! the noise distribution has shifted enough that the incumbent is losing
//! ground, and the detector fires.  All arithmetic is integer, so detection
//! ticks are exactly reproducible.
//!
//! After an adaptation the engine calls [`DriftDetector::recalibrate`]: the
//! window empties and the baseline re-latches on the next `window` frames —
//! the post-adaptation filter is judged against its own level, not the
//! pre-drift one.  A `cooldown` suppresses re-firing for a number of frames
//! after each fire so one shift cannot trigger a burst of adaptations while
//! the window still straddles the transition.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of a [`DriftDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Calibration window length in frames (must be positive).
    pub window: usize,
    /// Fire when the window fitness exceeds `threshold_pct`% of the
    /// baseline; 150 means "50% worse than calibration".  Must be ≥ 100.
    pub threshold_pct: u32,
    /// Frames to suppress re-firing after a fire.
    pub cooldown: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 8,
            threshold_pct: 150,
            cooldown: 8,
        }
    }
}

impl DriftConfig {
    /// Panics on degenerate parameters; mirrored by the jobs-layer builder
    /// which reports them as spec errors instead.
    pub fn validate(&self) {
        assert!(self.window > 0, "drift window must be positive");
        assert!(
            self.threshold_pct >= 100,
            "drift threshold below 100% would fire at calibration level"
        );
    }
}

/// Sliding-window fitness monitor; see the module docs for the model.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    config: DriftConfig,
    window: VecDeque<u64>,
    window_sum: u64,
    baseline_sum: Option<u64>,
    cooldown_left: usize,
}

impl DriftDetector {
    /// Creates a detector with an empty window and no baseline.
    pub fn new(config: DriftConfig) -> Self {
        config.validate();
        Self {
            config,
            window: VecDeque::with_capacity(config.window),
            window_sum: 0,
            baseline_sum: None,
            cooldown_left: 0,
        }
    }

    /// Feeds one frame's fitness; returns `true` when drift fires at this
    /// frame.
    pub fn observe(&mut self, fitness: u64) -> bool {
        self.window.push_back(fitness);
        self.window_sum += fitness;
        if self.window.len() > self.config.window {
            let old = self.window.pop_front().expect("window is non-empty");
            self.window_sum -= old;
        }
        if self.window.len() < self.config.window {
            return false;
        }
        let Some(baseline) = self.baseline_sum else {
            // First full window: this is the calibration level.
            self.baseline_sum = Some(self.window_sum);
            return false;
        };
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return false;
        }
        let fired = u128::from(self.window_sum) * 100
            > u128::from(baseline) * u128::from(self.config.threshold_pct);
        if fired {
            self.cooldown_left = self.config.cooldown;
        }
        fired
    }

    /// Empties the window and drops the baseline, so the next `window`
    /// frames re-latch it.  Called by the engine after every adaptation
    /// attempt (applied or not) so the detector judges the current filter.
    pub fn recalibrate(&mut self) {
        self.window.clear();
        self.window_sum = 0;
        self.baseline_sum = None;
        self.cooldown_left = 0;
    }

    /// Sum of the fitness values currently in the window.
    pub fn window_sum(&self) -> u64 {
        self.window_sum
    }

    /// The latched baseline sum, if calibration has completed.
    pub fn baseline_sum(&self) -> Option<u64> {
        self.baseline_sum
    }

    /// Whether the calibration window is full.
    pub fn calibrated(&self) -> bool {
        self.baseline_sum.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(window: usize, threshold_pct: u32, cooldown: usize) -> DriftDetector {
        DriftDetector::new(DriftConfig {
            window,
            threshold_pct,
            cooldown,
        })
    }

    #[test]
    fn latches_baseline_on_first_full_window() {
        let mut d = detector(3, 150, 0);
        assert!(!d.observe(10));
        assert!(!d.observe(10));
        assert!(!d.calibrated());
        assert!(!d.observe(10));
        assert!(d.calibrated());
        assert_eq!(d.baseline_sum(), Some(30));
    }

    #[test]
    fn fires_past_threshold_and_not_below() {
        let mut d = detector(2, 150, 0);
        d.observe(10);
        d.observe(10); // baseline = 20
        assert!(!d.observe(10)); // window 20 = baseline
        assert!(!d.observe(20)); // window 30, 150% of 20 exactly — not past
        assert!(d.observe(20)); // window 40 > 30
    }

    #[test]
    fn cooldown_suppresses_refiring() {
        let mut d = detector(2, 120, 3);
        d.observe(10);
        d.observe(10); // baseline 20
        assert!(d.observe(50)); // fires, cooldown starts
        assert!(!d.observe(50));
        assert!(!d.observe(50));
        assert!(!d.observe(50));
        assert!(d.observe(50)); // cooldown over, still past threshold
    }

    #[test]
    fn recalibrate_relatches_baseline() {
        let mut d = detector(2, 150, 0);
        d.observe(10);
        d.observe(10);
        assert!(d.observe(100));
        d.recalibrate();
        assert!(!d.calibrated());
        d.observe(100);
        assert!(!d.observe(100)); // second observation latches the new level
        assert_eq!(d.baseline_sum(), Some(200));
        assert!(!d.observe(100)); // steady at the new level: no fire
    }

    #[test]
    fn zero_baseline_fires_on_any_regression() {
        let mut d = detector(2, 150, 0);
        d.observe(0);
        d.observe(0); // a perfect filter calibrates at 0
        assert!(!d.observe(0));
        assert!(d.observe(1), "any positive error beats a zero baseline");
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_below_100_is_rejected() {
        detector(2, 99, 0);
    }
}
