//! The streaming engine: filter → score → detect drift → re-adapt.
//!
//! Every frame is filtered through the incumbent genotype's compiled plan
//! ([`plan_filter_windows`] over a [`SharedWindows`] extraction that is then
//! reused for calibration scoring), scored against the clean reference, and
//! fed to the [`DriftDetector`].  When drift fires, the engine waits for the
//! calibration window to refill with post-drift frames (the firing frame is
//! kept as the first piece of post-shift evidence), then re-evolves *from
//! the incumbent* on the newest frame under the per-adaptation budget,
//! scores challenger vs incumbent over the post-drift calibration windows,
//! and swaps only on strict improvement — a failed adaptation can never
//! regress the stream.
//!
//! # Seed lanes
//!
//! All engine randomness forks from the stream seed with fixed lane indices
//! (lane 0 is reserved for the frame source, seeded by the caller):
//!
//! | lane | use                                        |
//! |------|--------------------------------------------|
//! | 0    | frame source noise (seeded by the caller)  |
//! | 1    | bootstrap evolution                        |
//! | 2    | adaptation `k` uses `fork(2).fork(k)`      |
//!
//! Because every evolution run is itself worker-count invariant and every
//! other engine step is pure integer arithmetic, the whole stream replays
//! byte-identically at any worker/pool configuration.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use rand::SeedSequence;
use serde::{Deserialize, Serialize};

use ehw_array::compiled::CompiledArray;
use ehw_array::genotype::Genotype;
use ehw_evolution::fitness::{plan_filter_windows, plan_mae, SoftwareEvaluator};
use ehw_evolution::strategy::{
    run_evolution_with_parent, EsConfig, EvalEngine, GenerationObserver, MutationStrategy,
};
use ehw_image::metrics::mae;
use ehw_image::window::SharedWindows;
use ehw_parallel::ParallelConfig;

use crate::drift::{DriftConfig, DriftDetector};
use crate::source::FrameSource;

/// Seed lane of the bootstrap evolution.
const LANE_BOOTSTRAP: u64 = 1;
/// Seed lane under which adaptation `k` forks its evolution seed.
const LANE_ADAPT: u64 = 2;

/// Budget of one adaptation (and of the bootstrap evolution when the stream
/// starts without a trained genotype).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptationConfig {
    /// Offspring per generation (λ).
    pub offspring: usize,
    /// Genes mutated per offspring.
    pub mutation_rate: usize,
    /// Generation budget per adaptation.
    pub generations: usize,
    /// Optional wall-clock budget in milliseconds, checked at generation
    /// boundaries exactly like job deadlines.  **Opt-in nondeterminism**:
    /// how many generations fit the budget depends on the host clock, so
    /// streams that must replay byte-identically leave this `None`.
    pub max_millis: Option<u64>,
    /// Stop an adaptation early at this fitness.
    pub target_fitness: Option<u64>,
}

impl Default for AdaptationConfig {
    fn default() -> Self {
        AdaptationConfig {
            offspring: 9,
            mutation_rate: 3,
            generations: 30,
            max_millis: None,
            target_fitness: None,
        }
    }
}

/// Configuration of one stream run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Stream seed; root of every engine seed lane.
    pub seed: u64,
    /// Drift-detector parameters.
    pub drift: DriftConfig,
    /// Re-adaptation budget.
    pub adaptation: AdaptationConfig,
    /// Worker scheduling for candidate evaluation (scheduling only — does
    /// not affect results).
    pub parallel: ParallelConfig,
}

/// One engine event, emitted in stream order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEvent {
    /// A frame was filtered and scored.
    Frame {
        /// Frame index.
        index: usize,
        /// Aggregated MAE of the filtered frame against the reference.
        fitness: u64,
    },
    /// The drift detector fired at this frame.
    Drift {
        /// Frame index at which drift fired.
        frame: usize,
        /// Sliding-window fitness sum at the fire.
        window_fitness: u64,
        /// Baseline fitness sum latched at calibration.
        baseline_fitness: u64,
    },
    /// An adaptation finished (challenger evolved and judged).
    Adaptation {
        /// Frame index that triggered the adaptation.
        frame: usize,
        /// Zero-based adaptation index within the stream.
        index: usize,
        /// Whether the challenger replaced the incumbent.
        accepted: bool,
        /// Incumbent's fitness sum over the calibration windows.
        incumbent_fitness: u64,
        /// Challenger's fitness sum over the calibration windows.
        candidate_fitness: u64,
        /// Generations the adaptation actually ran (may be cut short by the
        /// wall-clock budget or cancellation).
        generations_run: usize,
    },
}

/// Fitness accounting for one stretch of frames between applied adaptations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentReport {
    /// First frame of the segment.
    pub start_frame: usize,
    /// Frames in the segment.
    pub frames: usize,
    /// Sum of per-frame fitness over the segment.
    pub fitness_sum: u64,
}

impl SegmentReport {
    /// Mean per-frame fitness over the segment.
    pub fn mean_fitness(&self) -> f64 {
        if self.frames == 0 {
            return 0.0;
        }
        self.fitness_sum as f64 / self.frames as f64
    }
}

/// Summary of a finished (or cancelled) stream run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamReport {
    /// Frames processed.
    pub frames: usize,
    /// Times the drift detector fired.
    pub drift_events: usize,
    /// Adaptations attempted (every drift fire attempts one).
    pub adaptations_attempted: usize,
    /// Adaptations whose challenger replaced the incumbent.
    pub adaptations_applied: usize,
    /// Candidate evaluations across bootstrap and all adaptations.
    pub evaluations: u64,
    /// Fitness of the incumbent on the first frame (after bootstrap).
    pub initial_fitness: Option<u64>,
    /// Fitness on the last processed frame.
    pub final_fitness: Option<u64>,
    /// Per-segment fitness, segments delimited by applied adaptations.
    pub segments: Vec<SegmentReport>,
    /// Encoded bytes of the final incumbent genotype.
    pub final_genotype: Vec<u8>,
    /// Order-sensitive hash folded over every filtered frame's content hash
    /// — the byte-identity witness the determinism suite compares.
    pub output_hash: u64,
    /// Whether the run was cut short by the cancel callback.
    pub stopped: bool,
}

/// Evolution observer enforcing the adaptation budget: stops at a generation
/// boundary when the cancel callback fires or the wall-clock deadline passes.
struct BudgetObserver<'a> {
    deadline: Option<Instant>,
    cancel: &'a dyn Fn() -> bool,
}

impl GenerationObserver for BudgetObserver<'_> {
    fn on_generation(&mut self, _generation: usize, _reconfigs: &[usize], _best: u64) {}

    fn should_stop(&self) -> bool {
        (self.cancel)() || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

fn es_config(a: &AdaptationConfig, parallel: ParallelConfig, seed: u64) -> EsConfig {
    EsConfig {
        offspring: a.offspring,
        mutation_rate: a.mutation_rate,
        generations: a.generations,
        num_arrays: 1,
        strategy: MutationStrategy::Classic,
        target_fitness: a.target_fitness,
        seed,
        parallel,
        engine: EvalEngine::Bounded,
    }
}

fn adaptation_deadline(a: &AdaptationConfig) -> Option<Instant> {
    a.max_millis
        .map(|ms| Instant::now() + Duration::from_millis(ms))
}

/// Order-sensitive 64-bit fold (FNV-ish with a rotate so permutations of
/// the same frame hashes do not collide).
fn mix(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0000_0100_0000_01b3).rotate_left(17)
}

/// Runs a stream to completion (or cancellation).
///
/// * `initial` — incumbent genotype to start from; when `None`, a bootstrap
///   evolution is run on the first frame (with `warm_parent` as its starting
///   parent when provided — the champion-library warm-start hook).
/// * `on_event` — called once per [`StreamEvent`], in stream order.
/// * `cancel` — polled at every frame boundary and at every adaptation
///   generation boundary; returning `true` ends the run with the partial
///   report accumulated so far and `stopped = true`.
///
/// # Panics
/// Panics when `initial` is `None` and the source yields no frame 0 to
/// bootstrap from (the jobs-layer builder rejects such specs upfront).
pub fn run_stream(
    source: &mut dyn FrameSource,
    initial: Option<Genotype>,
    warm_parent: Option<Genotype>,
    config: &StreamConfig,
    on_event: &mut dyn FnMut(&StreamEvent),
    cancel: &dyn Fn() -> bool,
) -> StreamReport {
    config.drift.validate();
    let streams = SeedSequence::new(config.seed);
    let reference = source.reference().clone();
    let mut evaluations: u64 = 0;

    // --- incumbent -------------------------------------------------------
    let mut incumbent = match initial {
        Some(genotype) => genotype,
        None => {
            let frame0 = source
                .frame(0)
                .expect("cannot bootstrap a stream without frames");
            let cfg = es_config(
                &config.adaptation,
                config.parallel,
                streams.fork(LANE_BOOTSTRAP).seed(),
            );
            let mut evaluator = SoftwareEvaluator::new(frame0, reference.clone());
            let mut observer = BudgetObserver {
                deadline: adaptation_deadline(&config.adaptation),
                cancel,
            };
            let result =
                run_evolution_with_parent(&cfg, warm_parent, &mut evaluator, &mut observer);
            evaluations += result.evaluations;
            result.best_genotype
        }
    };
    let mut plan = CompiledArray::new(&incumbent);

    // --- stream loop ------------------------------------------------------
    let mut detector = DriftDetector::new(config.drift);
    let adapt_lane = streams.fork(LANE_ADAPT);
    let mut calibration: VecDeque<SharedWindows> = VecDeque::with_capacity(config.drift.window);
    let mut report = StreamReport {
        frames: 0,
        drift_events: 0,
        adaptations_attempted: 0,
        adaptations_applied: 0,
        evaluations: 0,
        initial_fitness: None,
        final_fitness: None,
        segments: Vec::new(),
        final_genotype: Vec::new(),
        output_hash: 0xcbf2_9ce4_8422_2325,
        stopped: false,
    };
    let mut segment = SegmentReport {
        start_frame: 0,
        frames: 0,
        fitness_sum: 0,
    };
    let mut adaptation_index = 0usize;
    // Frame at which drift fired, while waiting for the post-drift
    // calibration window to fill before adapting.
    let mut pending_drift: Option<usize> = None;

    for index in 0..source.len() {
        if cancel() {
            report.stopped = true;
            break;
        }
        let Some(input) = source.frame(index) else {
            break;
        };
        let windows = SharedWindows::new(&input);
        let output = plan_filter_windows(&plan, &windows);
        let fitness = mae(&output, &reference);
        report.output_hash = mix(report.output_hash, output.content_hash());
        report.frames += 1;
        report.initial_fitness.get_or_insert(fitness);
        report.final_fitness = Some(fitness);
        segment.frames += 1;
        segment.fitness_sum += fitness;
        calibration.push_back(windows);
        if calibration.len() > config.drift.window {
            calibration.pop_front();
        }
        on_event(&StreamEvent::Frame { index, fitness });

        if pending_drift.is_none() {
            if detector.observe(fitness) {
                report.drift_events += 1;
                on_event(&StreamEvent::Drift {
                    frame: index,
                    window_fitness: detector.window_sum(),
                    baseline_fitness: detector.baseline_sum().unwrap_or(0),
                });
                // The calibration buffer straddles the shift; only the
                // firing frame is known post-shift evidence.  Keep it and
                // let the window refill before judging a challenger, so the
                // verdict is rendered on the *new* distribution.
                pending_drift = Some(index);
                while calibration.len() > 1 {
                    calibration.pop_front();
                }
                detector.recalibrate();
            }
            continue;
        }
        if calibration.len() < config.drift.window {
            continue;
        }

        // --- adaptation: post-drift window is full ------------------------
        report.adaptations_attempted += 1;
        let cfg = es_config(
            &config.adaptation,
            config.parallel,
            adapt_lane.fork(adaptation_index as u64).seed(),
        );
        let mut evaluator = SoftwareEvaluator::new(input.clone(), reference.clone());
        let mut observer = BudgetObserver {
            deadline: adaptation_deadline(&config.adaptation),
            cancel,
        };
        let result =
            run_evolution_with_parent(&cfg, Some(incumbent.clone()), &mut evaluator, &mut observer);
        evaluations += result.evaluations;

        // Judge challenger vs incumbent over the post-drift calibration
        // windows; swap only on strict improvement so a failed adaptation
        // cannot regress the stream.
        let challenger = CompiledArray::new(&result.best_genotype);
        let incumbent_sum: u64 = calibration
            .iter()
            .map(|w| plan_mae(&plan, w, &reference))
            .sum();
        let candidate_sum: u64 = calibration
            .iter()
            .map(|w| plan_mae(&challenger, w, &reference))
            .sum();
        let accepted = candidate_sum < incumbent_sum;
        on_event(&StreamEvent::Adaptation {
            frame: index,
            index: adaptation_index,
            accepted,
            incumbent_fitness: incumbent_sum,
            candidate_fitness: candidate_sum,
            generations_run: result.generations_run,
        });
        adaptation_index += 1;
        pending_drift = None;
        if accepted {
            incumbent = result.best_genotype;
            plan = challenger;
            report.adaptations_applied += 1;
            report.segments.push(segment);
            segment = SegmentReport {
                start_frame: index + 1,
                frames: 0,
                fitness_sum: 0,
            };
        }
        // Either way the detector re-latches: judged-and-kept incumbents
        // get a fresh baseline too, or one shift would re-fire forever.
        detector.recalibrate();
    }

    if segment.frames > 0 {
        report.segments.push(segment);
    }
    report.evaluations = evaluations;
    report.final_genotype = incumbent.encode();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{NoiseSegment, SceneKind, SyntheticSource};
    use ehw_image::noise::NoiseModel;

    fn shift_source(seed: u64) -> SyntheticSource {
        SyntheticSource::new(
            SceneKind::Shapes { complexity: 4 },
            24,
            24,
            36,
            vec![
                NoiseSegment {
                    start_frame: 0,
                    noise: NoiseModel::SaltPepper { density: 0.1 },
                },
                NoiseSegment {
                    start_frame: 18,
                    noise: NoiseModel::SaltPepper { density: 0.6 },
                },
            ],
            seed,
        )
        .unwrap()
    }

    fn test_config(seed: u64, workers: Option<usize>) -> StreamConfig {
        StreamConfig {
            seed,
            drift: DriftConfig {
                window: 4,
                threshold_pct: 140,
                cooldown: 4,
            },
            adaptation: AdaptationConfig {
                generations: 80,
                ..AdaptationConfig::default()
            },
            parallel: workers.map_or_else(ParallelConfig::serial, ParallelConfig::with_workers),
        }
    }

    fn never() -> bool {
        false
    }

    #[test]
    fn scripted_shift_fires_drift_and_recovers() {
        let mut source = shift_source(11);
        let mut events = Vec::new();
        let report = run_stream(
            &mut source,
            None,
            None,
            &test_config(42, None),
            &mut |e| events.push(*e),
            &never,
        );
        assert_eq!(report.frames, 36);
        assert!(!report.stopped);
        assert!(report.drift_events >= 1, "noise shift must fire drift");
        assert!(report.adaptations_attempted >= 1);
        assert_eq!(
            report.segments.iter().map(|s| s.frames).sum::<usize>(),
            36,
            "segments must partition the stream"
        );
        assert!(events
            .iter()
            .any(|e| matches!(e, StreamEvent::Drift { frame, .. } if *frame >= 18)));
        // Frame events carry every index exactly once, in order.
        let frame_indices: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                StreamEvent::Frame { index, .. } => Some(*index),
                _ => None,
            })
            .collect();
        assert_eq!(frame_indices, (0..36).collect::<Vec<_>>());
        assert!(Genotype::decode(&report.final_genotype).is_some());
    }

    #[test]
    fn adaptation_recovers_calibration_fitness() {
        // After the shift the incumbent degrades; an applied adaptation must
        // leave the post-shift segment no worse than the pre-adaptation
        // frames at the shifted noise level.  The acceptance rule guarantees
        // it on the calibration window by construction; spot-check that the
        // engine actually applied one for this seed.
        let mut source = shift_source(11);
        let report = run_stream(
            &mut source,
            None,
            None,
            &test_config(42, None),
            &mut |_| {},
            &never,
        );
        assert!(
            report.adaptations_applied >= 1,
            "expected the challenger to win at least once: {report:?}"
        );
        assert!(report.segments.len() >= 2);
    }

    #[test]
    fn stream_replays_byte_identically_at_any_worker_count() {
        let reference = {
            let mut source = shift_source(5);
            run_stream(
                &mut source,
                None,
                None,
                &test_config(7, None),
                &mut |_| {},
                &never,
            )
        };
        for workers in [2usize, 8] {
            let mut source = shift_source(5);
            let r = run_stream(
                &mut source,
                None,
                None,
                &test_config(7, Some(workers)),
                &mut |_| {},
                &never,
            );
            assert_eq!(r, reference, "stream diverged at {workers} workers");
        }
    }

    #[test]
    fn explicit_initial_genotype_skips_bootstrap() {
        let mut rng = SeedSequence::new(1).rng();
        let genotype = Genotype::random(&mut rng);
        let mut source = shift_source(3);
        let config = StreamConfig {
            drift: DriftConfig {
                // Huge threshold: no adaptation will ever fire.
                threshold_pct: 100_000,
                ..test_config(9, None).drift
            },
            ..test_config(9, None)
        };
        let report = run_stream(
            &mut source,
            Some(genotype.clone()),
            None,
            &config,
            &mut |_| {},
            &never,
        );
        assert_eq!(report.evaluations, 0, "no bootstrap, no adaptation");
        assert_eq!(report.final_genotype, genotype.encode());
        assert_eq!(report.adaptations_attempted, 0);
    }

    #[test]
    fn cancel_stops_at_a_frame_boundary() {
        use std::cell::Cell;
        let seen = Cell::new(0usize);
        let mut source = shift_source(3);
        let cancel = || seen.get() >= 5;
        let report = run_stream(
            &mut source,
            None,
            None,
            &test_config(1, None),
            &mut |e| {
                if matches!(e, StreamEvent::Frame { .. }) {
                    seen.set(seen.get() + 1);
                }
            },
            &cancel,
        );
        assert!(report.stopped);
        assert_eq!(report.frames, 5, "must stop at the next frame boundary");
    }

    #[test]
    fn wall_clock_budget_cuts_an_adaptation_short() {
        let mut source = shift_source(11);
        let mut config = test_config(42, None);
        config.adaptation.generations = 1_000_000;
        config.adaptation.max_millis = Some(50);
        let start = Instant::now();
        let report = run_stream(&mut source, None, None, &config, &mut |_| {}, &never);
        // One bootstrap plus any adaptations, each capped at ~50ms, must not
        // take anywhere near the time a million generations would.
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "wall-clock budget did not bite"
        );
        assert_eq!(report.frames, 36);
    }

    #[test]
    fn warm_parent_seeds_the_bootstrap() {
        // With adaptations disabled the final genotype IS the bootstrap
        // result; re-running the bootstrap warm-started from it can only
        // match or improve its frame-0 fitness (elitist selection keeps the
        // parent's level as the floor).
        let mut config = test_config(13, None);
        config.drift.threshold_pct = 100_000;
        let mut source = shift_source(3);
        let cold = run_stream(&mut source, None, None, &config, &mut |_| {}, &never);
        let warm_genotype = Genotype::decode(&cold.final_genotype).unwrap();
        let mut source2 = shift_source(3);
        let warm = run_stream(
            &mut source2,
            None,
            Some(warm_genotype),
            &config,
            &mut |_| {},
            &never,
        );
        assert!(
            warm.initial_fitness.unwrap() <= cold.initial_fitness.unwrap(),
            "warm bootstrap must start no worse than cold: {warm:?} vs {cold:?}"
        );
    }
}
