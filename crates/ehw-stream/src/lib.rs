//! Frame-stream denoising with drift detection and online re-adaptation.
//!
//! The paper's evolvable filters are trained against a single static image;
//! this crate keeps such a filter useful in *deployment*, where the input is
//! a stream of frames whose noise profile drifts over time (a sensor feed
//! whose channel degrades, lighting changes, a different interference source
//! kicking in).  Three pieces compose:
//!
//! * [`FrameSource`] — where frames come from.  [`SyntheticSource`] generates
//!   frames deterministically from a clean scene and a scriptable
//!   *noise-shift schedule* (each segment applies a different
//!   [`NoiseModel`](ehw_image::noise::NoiseModel) from its start frame on);
//!   [`PgmDirSource`] replays a directory of PGM frames against a fixed
//!   clean reference.
//! * [`DriftDetector`] — scores the incumbent filter's fitness on a sliding
//!   calibration window of recent frames and compares it with the baseline
//!   latched when the window first filled.  When the windowed fitness
//!   exceeds the baseline by a configured percentage, the detector fires.
//! * [`run_stream`] — the engine.  Every frame is filtered through the
//!   incumbent genotype's compiled plan (windows extracted once per frame and
//!   shared between filtering and later adaptation scoring).  When drift
//!   fires, the engine re-evolves *from the incumbent* under a per-adaptation
//!   generation and optional wall-clock budget, and swaps the challenger in
//!   only when it strictly beats the incumbent on the calibration window.
//!
//! # Determinism contract
//!
//! A stream's outcome is a pure function of (spec, seed).  All randomness is
//! drawn from position-addressed [`SeedSequence`](rand::SeedSequence) lanes
//! forked from the stream seed: lane 1 seeds the bootstrap evolution, lane 2
//! forks one sub-lane per adaptation, and the frame source derives per-frame
//! noise RNGs from its own seed by frame index.  Worker counts, queue order
//! and pool sizes are scheduling only — the per-frame outputs, drift ticks
//! and adaptation results are byte-identical at any `EHW_WORKERS` (the
//! `property_stream_determinism` suite enforces it).  The one opt-in
//! exception is the wall-clock adaptation budget
//! ([`AdaptationConfig::max_millis`]): like job deadlines, it cuts evolution
//! at a generation boundary chosen by the host clock, trading determinism
//! for bounded latency.

#![warn(missing_docs)]

pub mod drift;
pub mod engine;
pub mod source;

pub use drift::{DriftConfig, DriftDetector};
pub use engine::{
    run_stream, AdaptationConfig, SegmentReport, StreamConfig, StreamEvent, StreamReport,
};
pub use source::{
    FrameSource, NoiseSegment, PgmDirSource, SceneKind, SourceError, SyntheticSource,
};
