//! Deterministic frame sources.
//!
//! A [`FrameSource`] yields noisy input frames by index against one fixed
//! clean reference.  Frames are *random-access*: `frame(i)` depends only on
//! the source's construction parameters and `i`, never on the order or
//! number of previous calls — which is what lets the engine (or a test)
//! re-read any frame and still replay byte-identically.

use std::fmt;
use std::path::{Path, PathBuf};

use rand::SeedSequence;

use ehw_image::image::GrayImage;
use ehw_image::noise::NoiseModel;
use ehw_image::pgm::{self, PgmError};
use ehw_image::synth;

/// Smallest frame edge the 3×3 window pipeline supports.
pub const MIN_FRAME_EDGE: usize = 3;

/// A source of noisy frames measured against a single clean reference.
pub trait FrameSource {
    /// The clean reference every frame is scored against.
    fn reference(&self) -> &GrayImage;

    /// Total number of frames in the stream.
    fn len(&self) -> usize;

    /// Whether the stream has no frames.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The noisy input for frame `index`, or `None` past the end of the
    /// stream.  Must be a pure function of the source's construction
    /// parameters and `index`.
    fn frame(&mut self, index: usize) -> Option<GrayImage>;
}

/// Clean scenes the synthetic source can render.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SceneKind {
    /// Random rectangles/discs over a gradient (`synth::shapes`).
    Shapes {
        /// Number of shapes drawn.
        complexity: usize,
    },
    /// Horizontal gradient.
    Gradient,
    /// Diagonal gradient.
    DiagonalGradient,
    /// Checkerboard with the given cell size.
    Checkerboard {
        /// Cell edge in pixels.
        cell: usize,
    },
    /// Vertical step edge.
    StepEdge,
    /// Concentric rings with the given period.
    Rings {
        /// Ring period in pixels.
        period: usize,
    },
}

impl SceneKind {
    /// Renders the scene at the given size.
    pub fn render(&self, width: usize, height: usize) -> GrayImage {
        match *self {
            SceneKind::Shapes { complexity } => synth::shapes(width, height, complexity),
            SceneKind::Gradient => synth::gradient(width, height),
            SceneKind::DiagonalGradient => synth::diagonal_gradient(width, height),
            SceneKind::Checkerboard { cell } => synth::checkerboard(width, height, cell),
            SceneKind::StepEdge => synth::step_edge(width, height),
            SceneKind::Rings { period } => synth::rings(width, height, period),
        }
    }

    /// Stable tag used by the wire codec.
    pub fn tag(&self) -> &'static str {
        match self {
            SceneKind::Shapes { .. } => "shapes",
            SceneKind::Gradient => "gradient",
            SceneKind::DiagonalGradient => "diagonal_gradient",
            SceneKind::Checkerboard { .. } => "checkerboard",
            SceneKind::StepEdge => "step_edge",
            SceneKind::Rings { .. } => "rings",
        }
    }
}

/// One segment of a noise-shift schedule: from `start_frame` (inclusive)
/// until the next segment begins, frames are corrupted with `noise`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseSegment {
    /// First frame this segment applies to.
    pub start_frame: usize,
    /// Noise model applied to the clean scene.
    pub noise: NoiseModel,
}

/// Why a source could not be built.
#[derive(Debug)]
pub enum SourceError {
    /// The stream would contain no frames.
    ZeroFrames,
    /// The frame is smaller than the 3×3 window pipeline supports.
    FrameTooSmall {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// The noise-shift schedule is empty.
    EmptySchedule,
    /// The first schedule segment does not start at frame 0.
    ScheduleStartsLate {
        /// Start frame of the first segment.
        start: usize,
    },
    /// Schedule segments are not strictly increasing by start frame.
    ScheduleNotSorted {
        /// Index of the offending segment.
        index: usize,
    },
    /// A PGM file could not be read or parsed.
    Pgm(PgmError),
    /// The directory holds no `.pgm` frames.
    NoPgmFrames {
        /// Directory that was scanned.
        dir: PathBuf,
    },
    /// A frame's dimensions differ from the reference.
    ShapeMismatch {
        /// Path of the offending frame.
        frame: PathBuf,
    },
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::ZeroFrames => write!(f, "stream must contain at least one frame"),
            SourceError::FrameTooSmall { width, height } => write!(
                f,
                "frame {width}x{height} is below the {MIN_FRAME_EDGE}x{MIN_FRAME_EDGE} minimum"
            ),
            SourceError::EmptySchedule => {
                write!(f, "noise schedule must have at least one segment")
            }
            SourceError::ScheduleStartsLate { start } => {
                write!(f, "first noise segment must start at frame 0, not {start}")
            }
            SourceError::ScheduleNotSorted { index } => {
                write!(f, "noise segment {index} does not increase the start frame")
            }
            SourceError::Pgm(e) => write!(f, "pgm error: {e:?}"),
            SourceError::NoPgmFrames { dir } => {
                write!(f, "no .pgm frames found in {}", dir.display())
            }
            SourceError::ShapeMismatch { frame } => write!(
                f,
                "frame {} does not match the reference dimensions",
                frame.display()
            ),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<PgmError> for SourceError {
    fn from(e: PgmError) -> Self {
        SourceError::Pgm(e)
    }
}

/// Deterministic synthetic stream: a fixed clean scene corrupted per frame
/// by whichever [`NoiseSegment`] of the schedule is active at that frame.
///
/// The per-frame noise RNG is `streams.fork(index)` of the source seed, so
/// frame `i` is identical no matter when (or how often) it is requested.
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    clean: GrayImage,
    schedule: Vec<NoiseSegment>,
    frames: usize,
    streams: SeedSequence,
}

impl SyntheticSource {
    /// Builds a synthetic source.
    ///
    /// The schedule must be non-empty, start at frame 0 and be strictly
    /// increasing by start frame.
    pub fn new(
        scene: SceneKind,
        width: usize,
        height: usize,
        frames: usize,
        schedule: Vec<NoiseSegment>,
        seed: u64,
    ) -> Result<Self, SourceError> {
        if frames == 0 {
            return Err(SourceError::ZeroFrames);
        }
        if width < MIN_FRAME_EDGE || height < MIN_FRAME_EDGE {
            return Err(SourceError::FrameTooSmall { width, height });
        }
        validate_schedule(&schedule)?;
        Ok(Self {
            clean: scene.render(width, height),
            schedule,
            frames,
            streams: SeedSequence::new(seed),
        })
    }

    /// The noise model active at the given frame.
    pub fn noise_at(&self, index: usize) -> NoiseModel {
        // The schedule is sorted and starts at 0, so the active segment is
        // the last one whose start frame is not past `index`.
        self.schedule
            .iter()
            .rev()
            .find(|s| s.start_frame <= index)
            .expect("schedule starts at frame 0")
            .noise
    }
}

/// Checks the schedule invariants shared by the source and the jobs-layer
/// spec builder.
pub fn validate_schedule(schedule: &[NoiseSegment]) -> Result<(), SourceError> {
    let first = schedule.first().ok_or(SourceError::EmptySchedule)?;
    if first.start_frame != 0 {
        return Err(SourceError::ScheduleStartsLate {
            start: first.start_frame,
        });
    }
    for (i, pair) in schedule.windows(2).enumerate() {
        if pair[1].start_frame <= pair[0].start_frame {
            return Err(SourceError::ScheduleNotSorted { index: i + 1 });
        }
    }
    Ok(())
}

impl FrameSource for SyntheticSource {
    fn reference(&self) -> &GrayImage {
        &self.clean
    }

    fn len(&self) -> usize {
        self.frames
    }

    fn frame(&mut self, index: usize) -> Option<GrayImage> {
        if index >= self.frames {
            return None;
        }
        let mut rng = self.streams.fork(index as u64).rng();
        Some(self.noise_at(index).apply(&self.clean, &mut rng))
    }
}

/// Replays a directory of `.pgm` frames (sorted by file name) against a
/// fixed clean reference image.
///
/// All frames are loaded and shape-checked eagerly so a malformed file fails
/// the job at submission, not halfway through the stream.
#[derive(Debug, Clone)]
pub struct PgmDirSource {
    frames: Vec<GrayImage>,
    reference: GrayImage,
}

impl PgmDirSource {
    /// Loads every `.pgm` file under `dir` (sorted by file name) and the
    /// clean reference image.
    pub fn new(dir: impl AsRef<Path>, reference: impl AsRef<Path>) -> Result<Self, SourceError> {
        let dir = dir.as_ref();
        let reference = pgm::read_pgm(reference.as_ref())?;
        if reference.width() < MIN_FRAME_EDGE || reference.height() < MIN_FRAME_EDGE {
            return Err(SourceError::FrameTooSmall {
                width: reference.width(),
                height: reference.height(),
            });
        }
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| SourceError::Pgm(PgmError::Io(e)))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "pgm"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(SourceError::NoPgmFrames {
                dir: dir.to_path_buf(),
            });
        }
        let mut frames = Vec::with_capacity(paths.len());
        for path in paths {
            let frame = pgm::read_pgm(&path)?;
            if frame.width() != reference.width() || frame.height() != reference.height() {
                return Err(SourceError::ShapeMismatch { frame: path });
            }
            frames.push(frame);
        }
        Ok(Self { frames, reference })
    }
}

impl FrameSource for PgmDirSource {
    fn reference(&self) -> &GrayImage {
        &self.reference
    }

    fn len(&self) -> usize {
        self.frames.len()
    }

    fn frame(&mut self, index: usize) -> Option<GrayImage> {
        self.frames.get(index).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> Vec<NoiseSegment> {
        vec![
            NoiseSegment {
                start_frame: 0,
                noise: NoiseModel::SaltPepper { density: 0.2 },
            },
            NoiseSegment {
                start_frame: 5,
                noise: NoiseModel::Gaussian { sigma: 20.0 },
            },
        ]
    }

    #[test]
    fn synthetic_frames_are_random_access_deterministic() {
        let mut a = SyntheticSource::new(
            SceneKind::Shapes { complexity: 4 },
            16,
            16,
            10,
            schedule(),
            7,
        )
        .unwrap();
        let mut b = SyntheticSource::new(
            SceneKind::Shapes { complexity: 4 },
            16,
            16,
            10,
            schedule(),
            7,
        )
        .unwrap();
        // Same index, different request orders and repetition counts.
        let a3 = a.frame(3).unwrap();
        let _ = a.frame(9);
        let b9 = b.frame(9).unwrap();
        let b3 = b.frame(3).unwrap();
        assert_eq!(a3.content_hash(), b3.content_hash());
        assert_eq!(a.frame(9).unwrap().content_hash(), b9.content_hash());
        assert!(a.frame(10).is_none());
    }

    #[test]
    fn schedule_switches_the_noise_model() {
        let src = SyntheticSource::new(SceneKind::Gradient, 16, 16, 10, schedule(), 1).unwrap();
        assert!(matches!(src.noise_at(0), NoiseModel::SaltPepper { .. }));
        assert!(matches!(src.noise_at(4), NoiseModel::SaltPepper { .. }));
        assert!(matches!(src.noise_at(5), NoiseModel::Gaussian { .. }));
        assert!(matches!(src.noise_at(9), NoiseModel::Gaussian { .. }));
    }

    #[test]
    fn different_seeds_give_different_noise() {
        let mut a = SyntheticSource::new(SceneKind::Gradient, 16, 16, 2, schedule(), 1).unwrap();
        let mut b = SyntheticSource::new(SceneKind::Gradient, 16, 16, 2, schedule(), 2).unwrap();
        assert_ne!(
            a.frame(0).unwrap().content_hash(),
            b.frame(0).unwrap().content_hash()
        );
    }

    #[test]
    fn schedule_validation_rejects_bad_shapes() {
        assert!(matches!(
            SyntheticSource::new(SceneKind::Gradient, 16, 16, 10, vec![], 1),
            Err(SourceError::EmptySchedule)
        ));
        let late = vec![NoiseSegment {
            start_frame: 3,
            noise: NoiseModel::SaltPepper { density: 0.1 },
        }];
        assert!(matches!(
            SyntheticSource::new(SceneKind::Gradient, 16, 16, 10, late, 1),
            Err(SourceError::ScheduleStartsLate { start: 3 })
        ));
        let unsorted = vec![
            NoiseSegment {
                start_frame: 0,
                noise: NoiseModel::SaltPepper { density: 0.1 },
            },
            NoiseSegment {
                start_frame: 4,
                noise: NoiseModel::SaltPepper { density: 0.2 },
            },
            NoiseSegment {
                start_frame: 4,
                noise: NoiseModel::SaltPepper { density: 0.3 },
            },
        ];
        assert!(matches!(
            SyntheticSource::new(SceneKind::Gradient, 16, 16, 10, unsorted, 1),
            Err(SourceError::ScheduleNotSorted { index: 2 })
        ));
        assert!(matches!(
            SyntheticSource::new(SceneKind::Gradient, 2, 16, 10, schedule(), 1),
            Err(SourceError::FrameTooSmall { .. })
        ));
        assert!(matches!(
            SyntheticSource::new(SceneKind::Gradient, 16, 16, 0, schedule(), 1),
            Err(SourceError::ZeroFrames)
        ));
    }

    #[test]
    fn pgm_dir_source_replays_sorted_frames() {
        let dir = std::env::temp_dir().join(format!("ehw_stream_pgm_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let clean = synth::shapes(8, 8, 2);
        let mut rng = rand::SeedSequence::new(3).rng();
        for i in 0..3 {
            let noisy = ehw_image::noise::salt_pepper(&clean, 0.1 * (i + 1) as f64, &mut rng);
            ehw_image::pgm::write_pgm(&noisy, dir.join(format!("frame_{i:03}.pgm"))).unwrap();
        }
        let refp = dir.join("clean.refpgm");
        ehw_image::pgm::write_pgm(&clean, &refp).unwrap();
        let mut src = PgmDirSource::new(&dir, &refp).unwrap();
        assert_eq!(src.len(), 3);
        assert_eq!(src.reference().content_hash(), clean.content_hash());
        assert!(src.frame(0).is_some());
        assert!(src.frame(3).is_none());
        // Frames come back in file-name order: frame 0 is the least noisy.
        let d0 = ehw_image::metrics::mae(&src.frame(0).unwrap(), &clean);
        let d2 = ehw_image::metrics::mae(&src.frame(2).unwrap(), &clean);
        assert!(d0 < d2, "sorted replay order violated: {d0} vs {d2}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
