//! Cascaded denoising: the paper's flagship application (Figs. 16–18).
//!
//! ```text
//! cargo run --release --example denoise_cascade -- [generations_per_stage] [output_dir]
//! ```
//!
//! A three-stage collaborative cascade is evolved against 40 % salt & pepper
//! noise.  The example reports the chain fitness after every stage, compares
//! the result against the conventional 3×3 median filter (the baseline the
//! paper cites in Fig. 18), and optionally writes the input / noisy / filtered
//! images as PGM files for visual inspection.

use ehw_image::filters;
use ehw_image::metrics::mae;
use ehw_image::noise::NoiseModel;
use ehw_image::pgm;
use ehw_image::synth;
use ehw_platform::evo_modes::{evolve_cascade, CascadeConfig, EvolutionTask};
use ehw_platform::platform::EhwPlatform;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let generations: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let output_dir = std::env::args().nth(2);

    let clean = synth::paper_scene_128();
    let mut rng = StdRng::seed_from_u64(7);
    let noisy = NoiseModel::paper_salt_pepper().apply(&clean, &mut rng);
    let task = EvolutionTask::new(noisy.clone(), clean.clone());

    println!("== Three-stage collaborative cascade on 40% salt & pepper ==");
    println!("unfiltered MAE:            {}", mae(&noisy, &clean));

    // Conventional baseline: a (non-cascadable) 3x3 median filter.
    let median = filters::median(&noisy);
    println!("median filter MAE:         {}", mae(&median, &clean));

    let mut platform = EhwPlatform::paper_three_arrays();
    let config = CascadeConfig::paper(generations, 2, 99);
    let result = evolve_cascade(&mut platform, &task, &config);

    for (stage, fitness) in result.stage_fitness.iter().enumerate() {
        println!("evolved cascade, stage {}: {}", stage + 1, fitness);
    }
    println!(
        "final chain MAE:           {}",
        result.final_fitness().expect("three stages")
    );

    let outputs = platform.process_cascaded(&noisy);
    if let Some(dir) = output_dir {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create output directory");
        pgm::write_pgm(&clean, dir.join("clean.pgm")).expect("write clean.pgm");
        pgm::write_pgm(&noisy, dir.join("noisy.pgm")).expect("write noisy.pgm");
        pgm::write_pgm(&median, dir.join("median.pgm")).expect("write median.pgm");
        for (i, out) in outputs.iter().enumerate() {
            pgm::write_pgm(out, dir.join(format!("cascade_stage{}.pgm", i + 1)))
                .expect("write stage output");
        }
        println!("images written to {}", dir.display());
    }
}
