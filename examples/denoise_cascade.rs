//! Cascaded denoising: the paper's flagship application (Figs. 16–18).
//!
//! ```text
//! cargo run --release --example denoise_cascade -- [generations_per_stage] [output_dir]
//! ```
//!
//! A three-stage collaborative cascade is evolved against 40 % salt & pepper
//! noise, submitted as one typed job to the [`EhwService`] front-end.  The
//! example reports the chain fitness after every stage, compares the result
//! against the conventional 3×3 median filter (the baseline the paper cites
//! in Fig. 18), and optionally writes the input / noisy / filtered images as
//! PGM files for visual inspection.

use ehw_array::array::ProcessingArray;
use ehw_image::filters;
use ehw_image::image::GrayImage;
use ehw_image::metrics::mae;
use ehw_image::noise::NoiseModel;
use ehw_image::pgm;
use ehw_image::synth;
use ehw_service::{EhwService, JobSpec, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let generations: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let output_dir = std::env::args().nth(2);

    let clean = synth::paper_scene_128();
    let mut rng = StdRng::seed_from_u64(7);
    let noisy = NoiseModel::paper_salt_pepper().apply(&clean, &mut rng);

    println!("== Three-stage collaborative cascade on 40% salt & pepper ==");
    println!("unfiltered MAE:            {}", mae(&noisy, &clean));

    // Conventional baseline: a (non-cascadable) 3x3 median filter.
    let median = filters::median(&noisy);
    println!("median filter MAE:         {}", mae(&median, &clean));

    // One typed cascade job (3 stages, the paper's parameters); the pinned
    // seed reproduces the legacy `evolve_cascade` run byte for byte.
    let service = EhwService::new(ServiceConfig::new(1)).expect("valid service config");
    let spec = JobSpec::cascade(noisy.clone(), clean.clone())
        .stages(3)
        .generations(generations)
        .mutation_rate(2)
        .seed(99)
        .build()
        .expect("valid cascade spec");
    let job = service
        .submit(spec)
        .expect("service accepts jobs")
        .wait()
        .expect("shard pool is alive");
    let result = job.as_cascade().expect("cascade job");

    for (stage, fitness) in result.stage_fitness.iter().enumerate() {
        println!("evolved cascade, stage {}: {}", stage + 1, fitness);
    }
    println!(
        "final chain MAE:           {}",
        result.final_fitness().expect("three stages")
    );

    // Rebuild the chain locally from the evolved stage genotypes to produce
    // the per-stage output images.
    let mut outputs: Vec<GrayImage> = Vec::new();
    for genotype in &result.stage_genotypes {
        let mut array = ProcessingArray::identity();
        array.set_genotype(genotype.clone());
        let out = array.filter_image(outputs.last().unwrap_or(&noisy));
        outputs.push(out);
    }
    if let Some(dir) = output_dir {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create output directory");
        pgm::write_pgm(&clean, dir.join("clean.pgm")).expect("write clean.pgm");
        pgm::write_pgm(&noisy, dir.join("noisy.pgm")).expect("write noisy.pgm");
        pgm::write_pgm(&median, dir.join("median.pgm")).expect("write median.pgm");
        for (i, out) in outputs.iter().enumerate() {
            pgm::write_pgm(out, dir.join(format!("cascade_stage{}.pgm", i + 1)))
                .expect("write stage output");
        }
        println!("images written to {}", dir.display());
    }
}
