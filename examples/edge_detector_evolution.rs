//! Retargeting the platform to a new task: evolving an edge detector.
//!
//! ```text
//! cargo run --release --example edge_detector_evolution -- [generations]
//! ```
//!
//! §III.A: *"if the training image is the noise-free one, and the reference is
//! set to the edge detected image, the circuit will converge to an
//! edge-detection filter.  This way, during system life-time new
//! functionalities can be obtained, only by providing the system with the
//! corresponding training and reference images."*
//!
//! This example does exactly that: the training input is the clean scene and
//! the reference is its Sobel edge map.  It also demonstrates the independent
//! evolution mode by giving each of the two arrays a different task (edge
//! detection vs. smoothing).

use ehw_evolution::strategy::EsConfig;
use ehw_image::filters;
use ehw_image::metrics::mae;
use ehw_image::synth;
use ehw_platform::evo_modes::{evolve_independent, EvolutionTask};
use ehw_platform::platform::EhwPlatform;

fn main() {
    let generations: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);

    let scene = synth::shapes(64, 64, 5);
    let edges = filters::sobel_edge(&scene);
    let smooth = filters::gaussian_blur(&scene);

    println!("== Independent evolution: edge detector + smoother ==");
    println!("edge task, identity MAE:    {}", mae(&scene, &edges));
    println!("smooth task, identity MAE:  {}", mae(&scene, &smooth));

    let mut platform = EhwPlatform::new(2);
    let tasks = vec![
        EvolutionTask::new(scene.clone(), edges.clone()),
        EvolutionTask::new(scene.clone(), smooth.clone()),
    ];
    let config = EsConfig::paper(3, 1, generations, 17);
    let (results, time) = evolve_independent(&mut platform, &tasks, &config);

    for (i, (result, name)) in results
        .iter()
        .zip(["edge detector", "smoother"])
        .enumerate()
    {
        println!(
            "array {i} ({name}): initial {} -> best {} ({:.1}% better)",
            result.initial_fitness,
            result.best_fitness,
            result.improvement() * 100.0
        );
    }
    println!(
        "modelled on-FPGA time for both sequential runs: {:.2} s",
        time.total_s
    );

    // Verify the configured platform in independent processing mode.
    let outputs = platform.process_independent(&[scene.clone(), scene.clone()]);
    println!(
        "verification: edge output MAE = {}, smooth output MAE = {}",
        mae(&outputs[0], &edges),
        mae(&outputs[1], &smooth)
    );
}
