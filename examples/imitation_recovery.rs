//! Evolution by imitation after a permanent fault (Figs. 7, 8 and 19).
//!
//! ```text
//! cargo run --release --example imitation_recovery -- [generations]
//! ```
//!
//! A working filter runs in a two-stage cascade.  A permanent fault is
//! injected into the second stage; the reference/training images are assumed
//! to be no longer available (the scenario §V.A motivates), so the damaged
//! stage is put in bypass mode and re-evolved **by imitation** of its healthy
//! neighbour.  The example compares the paper's two seeding strategies
//! (inherited genotype vs. random start, Fig. 19).

use ehw_evolution::strategy::{EsConfig, NullObserver};
use ehw_fabric::fault::FaultKind;
use ehw_image::noise::NoiseModel;
use ehw_image::synth;
use ehw_platform::evo_modes::{evolve_imitation, evolve_parallel, EvolutionTask, ImitationStart};
use ehw_platform::fault_campaign::find_injectable_pe;
use ehw_platform::platform::EhwPlatform;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let generations: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);

    let clean = synth::shapes(64, 64, 4);
    let mut rng = StdRng::seed_from_u64(3);
    let noisy = NoiseModel::SaltPepper { density: 0.3 }.apply(&clean, &mut rng);
    let task = EvolutionTask::new(noisy.clone(), clean);

    // Initial evolution: both arrays get the same working filter.
    let mut platform = EhwPlatform::new(2);
    let config = EsConfig::paper(3, 2, 200, 11);
    let (evolved, _) = evolve_parallel(&mut platform, &task, &config);
    println!("== Evolution by imitation after a permanent fault ==");
    println!("working filter fitness:          {}", evolved.best_fitness);

    // Permanent fault in an active PE of array 1 (upstream of the output, so
    // the inherited genotype can re-route around it); the reference image is
    // considered lost, so only imitation of array 0 can recover it.
    let (row, col) = find_injectable_pe(&platform, 1, &noisy);
    platform.inject_pe_fault(1, row, col, FaultKind::Lpd);
    platform.set_bypass(1, true);

    let recovery = EsConfig {
        target_fitness: Some(0),
        ..EsConfig::paper(1, 1, generations, 23)
    };

    // Strategy 1 (the paper's recommendation): start from the master genotype.
    let mut p1 = clone_platform_state(&platform);
    let inherited = evolve_imitation(
        &mut p1,
        1,
        0,
        &noisy,
        &recovery,
        ImitationStart::FromMaster,
        &mut NullObserver,
    );

    // Strategy 2: start from a random genotype.
    let mut p2 = clone_platform_state(&platform);
    let random = evolve_imitation(
        &mut p2,
        1,
        0,
        &noisy,
        &recovery,
        ImitationStart::Random,
        &mut NullObserver,
    );

    println!(
        "imitation fitness, inherited start: {} (threshold ~100 means 'functionally identical')",
        inherited.best_fitness
    );
    println!(
        "imitation fitness, random start:    {}",
        random.best_fitness
    );
    println!(
        "inherited start is {:.0}x closer to an exact copy",
        (random.best_fitness.max(1)) as f64 / (inherited.best_fitness.max(1)) as f64
    );
}

/// Rebuilds an equivalent platform (same genotypes, same faults) so the two
/// recovery strategies start from identical conditions.
fn clone_platform_state(platform: &EhwPlatform) -> EhwPlatform {
    let mut copy = EhwPlatform::new(platform.num_arrays());
    for i in 0..platform.num_arrays() {
        copy.configure_array(i, platform.acb(i).genotype());
    }
    for fault in platform.injected_faults() {
        copy.inject_pe_fault(fault.array, fault.row, fault.col, fault.kind);
    }
    for i in 0..platform.num_arrays() {
        if platform.acb(i).is_bypassed() {
            copy.set_bypass(i, true);
        }
    }
    copy
}
