//! Quick start: evolve a salt & pepper denoising filter through the service
//! layer.
//!
//! ```text
//! cargo run --release --example quickstart -- [generations]
//! ```
//!
//! The example builds a synthetic training scene, corrupts it with 40 % salt &
//! pepper noise (the paper's reference workload), submits one typed evolution
//! job to an [`EhwService`] — the front-end that multiplexes every workload
//! over a pool of platforms — and reports how the fitness (pixel-aggregated
//! MAE, lower is better) improved, together with the evolution time the
//! platform model predicts for the same run on the FPGA.

use ehw_array::array::ProcessingArray;
use ehw_image::metrics::mae;
use ehw_image::noise::NoiseModel;
use ehw_image::synth;
use ehw_service::{EhwService, JobSpec, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let generations: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);

    // Training pair: a synthetic 64×64 scene and its 40 % salt & pepper
    // corruption (64×64 keeps the example fast; the experiment binaries use
    // the paper's 128×128 and 256×256 sizes).
    let clean = synth::shapes(64, 64, 5);
    let mut rng = StdRng::seed_from_u64(2013);
    let noisy = NoiseModel::paper_salt_pepper().apply(&clean, &mut rng);

    println!("== Multi-array evolvable hardware: quick start ==");
    println!("image: 64x64, noise: 40% salt & pepper");
    println!("unfiltered MAE (identity): {}", mae(&noisy, &clean));

    // One service shard is plenty here; heavy traffic raises `platforms` /
    // `workers_per_platform` and submits many jobs at once.
    let service = EhwService::new(ServiceConfig::new(1)).expect("valid service config");

    // A typed evolution job with the paper's EA parameters (9 offspring per
    // generation, mutation rate k = 3); the spec validates shapes and budgets
    // at construction.  The pinned seed makes the run byte-reproducible — the
    // legacy `evolve_parallel` entry point with the same seed returns the
    // exact same result.
    let spec = JobSpec::evolution(noisy.clone(), clean.clone())
        .mutation_rate(3)
        .generations(generations)
        .seed(42)
        .build()
        .expect("valid evolution spec");
    let job = service
        .submit(spec)
        .expect("service accepts jobs")
        .wait()
        .expect("shard pool is alive");
    let (result, time) = job.as_evolution().expect("evolution job");

    println!("generations:            {}", result.generations_run);
    println!("initial fitness:        {}", result.initial_fitness);
    println!("best fitness:           {}", result.best_fitness);
    println!(
        "improvement:            {:.1}%",
        result.improvement() * 100.0
    );
    println!("candidate evaluations:  {}", job.evaluations);
    println!(
        "PE reconfigurations:    {}",
        result.total_pe_reconfigurations
    );
    println!(
        "modelled on-FPGA time:  {:.2} s ({:.1} ms/generation)",
        time.total_s,
        time.per_generation_s() * 1e3
    );

    // Configure the evolved circuit into a local array model and filter the
    // noisy image once more to confirm the reported fitness.
    let mut array = ProcessingArray::identity();
    array.set_genotype(result.best_genotype.clone());
    let filtered = array.filter_image(&noisy);
    println!("filtered MAE (verify):  {}", mae(&filtered, &clean));
}
