//! Quick start: evolve a salt & pepper denoising filter on a single array.
//!
//! ```text
//! cargo run --release --example quickstart -- [generations]
//! ```
//!
//! The example builds a synthetic training scene, corrupts it with 40 % salt &
//! pepper noise (the paper's reference workload), evolves one processing array
//! against the clean reference with the (1+λ) strategy, and reports how the
//! fitness (pixel-aggregated MAE, lower is better) improved, together with the
//! evolution time the platform model predicts for the same run on the FPGA.

use ehw_evolution::strategy::EsConfig;
use ehw_image::metrics::mae;
use ehw_image::noise::NoiseModel;
use ehw_image::synth;
use ehw_platform::evo_modes::{evolve_parallel, EvolutionTask};
use ehw_platform::platform::EhwPlatform;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let generations: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);

    // Training pair: a synthetic 64×64 scene and its 40 % salt & pepper
    // corruption (64×64 keeps the example fast; the experiment binaries use
    // the paper's 128×128 and 256×256 sizes).
    let clean = synth::shapes(64, 64, 5);
    let mut rng = StdRng::seed_from_u64(2013);
    let noisy = NoiseModel::paper_salt_pepper().apply(&clean, &mut rng);
    let task = EvolutionTask::new(noisy.clone(), clean.clone());

    println!("== Multi-array evolvable hardware: quick start ==");
    println!("image: 64x64, noise: 40% salt & pepper");
    println!("unfiltered MAE (identity): {}", mae(&noisy, &clean));

    // A single-array platform, evolved with the paper's EA parameters
    // (9 offspring per generation, mutation rate k = 3).
    let mut platform = EhwPlatform::new(1);
    let config = EsConfig::paper(3, 1, generations, 42);
    let (result, time) = evolve_parallel(&mut platform, &task, &config);

    println!("generations:            {}", result.generations_run);
    println!("initial fitness:        {}", result.initial_fitness);
    println!("best fitness:           {}", result.best_fitness);
    println!(
        "improvement:            {:.1}%",
        result.improvement() * 100.0
    );
    println!("candidate evaluations:  {}", result.evaluations);
    println!(
        "PE reconfigurations:    {}",
        result.total_pe_reconfigurations
    );
    println!(
        "modelled on-FPGA time:  {:.2} s ({:.1} ms/generation)",
        time.total_s,
        time.per_generation_s() * 1e3
    );

    // The evolved filter is now configured in the array; filter the noisy
    // image once more to confirm.
    let filtered = platform.acb(0).raw_output(&noisy);
    println!("filtered MAE (verify):  {}", mae(&filtered, &clean));
}
