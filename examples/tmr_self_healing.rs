//! TMR self-healing on the parallel processing mode (§V.B, Fig. 20).
//!
//! ```text
//! cargo run --release --example tmr_self_healing -- [evolution_generations] [recovery_generations]
//! ```
//!
//! Three arrays run the same evolved filter in parallel with a pixel voter and
//! a fitness voter.  A permanent (LPD) fault is injected into one array: the
//! pixel voter keeps the output stream valid, the fitness voter identifies the
//! damaged array, scrubbing rules out a transient fault, and evolution by
//! imitation re-learns the behaviour of a healthy sibling.

use ehw_evolution::strategy::EsConfig;
use ehw_fabric::fault::FaultKind;
use ehw_image::metrics::mae;
use ehw_image::noise::NoiseModel;
use ehw_image::synth;
use ehw_platform::evo_modes::{evolve_parallel, EvolutionTask};
use ehw_platform::platform::EhwPlatform;
use ehw_platform::self_healing::{HealingOutcome, TmrSupervisor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let evolution_generations: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let recovery_generations: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);

    let clean = synth::shapes(64, 64, 5);
    let mut rng = StdRng::seed_from_u64(20);
    let noisy = NoiseModel::SaltPepper { density: 0.3 }.apply(&clean, &mut rng);
    let task = EvolutionTask::new(noisy.clone(), clean.clone());

    println!("== TMR parallel mode with fault injection and imitation recovery ==");

    // Step a: evolve a working circuit and configure it in all three arrays.
    let mut platform = EhwPlatform::paper_three_arrays();
    let config = EsConfig::paper(3, 3, evolution_generations, 5);
    let (result, _) = evolve_parallel(&mut platform, &task, &config);
    println!("evolved filter fitness:       {}", result.best_fitness);

    // The reference stream the fitness voter compares against is the evolved
    // filter's own output on the mission input.
    let reference = platform.acb(0).raw_output(&noisy);
    let supervisor = TmrSupervisor::new(100);

    // Fault-free surveillance step.
    let step = supervisor.process(&platform, &noisy, &reference);
    println!("fitness voter (no fault):     {:?}", step.vote);

    // Inject a permanent fault into the output PE of array 1.
    let out_row = platform.acb(1).genotype().output_gene as usize;
    platform.inject_pe_fault(1, out_row, 3, FaultKind::Lpd);
    let step = supervisor.process(&platform, &noisy, &reference);
    println!("fitness voter (fault):        {:?}", step.vote);
    println!("per-array fitness:            {:?}", step.fitnesses);
    println!(
        "pixel voter masks the fault:  voted-output MAE vs reference = {}",
        mae(&step.voted_output, &reference)
    );

    // Recover: scrub → permanent → evolution by imitation from a sibling.
    let recovery = EsConfig {
        target_fitness: Some(0),
        ..EsConfig::paper(1, 1, recovery_generations, 77)
    };
    let (_, event) = supervisor.step_and_heal(&mut platform, &noisy, &reference, &recovery);
    match event {
        Some(event) => match event.outcome {
            HealingOutcome::PermanentRecovered {
                method,
                residual_fitness,
            } => {
                println!("recovery on array {}:          {:?}", event.array, method);
                println!("residual imitation fitness:   {residual_fitness}");
            }
            other => println!("healing outcome:              {other:?}"),
        },
        None => println!("no divergence detected"),
    }

    let step = supervisor.process(&platform, &noisy, &reference);
    println!("fitness voter (after heal):   {:?}", step.vote);
    println!("per-array fitness:            {:?}", step.fitnesses);
}
