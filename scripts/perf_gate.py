#!/usr/bin/env python3
"""Perf-trajectory gate for BENCH_evaluation.json.

Compares a freshly measured benchmark summary against the committed baseline
and fails (exit 1) when a tracked speedup regressed by more than the allowed
fraction (default 20%).  Metrics absent from the *baseline* are reported but
never gated — unless they are listed in REQUIRE_BASELINE, in which case a
missing baseline is itself a failure (those metrics have committed history
and silently dropping them from the summary would un-gate them).

Usage: perf_gate.py BASELINE.json FRESH.json [--max-regression=0.20]
"""

import json
import sys

TRACKED = [
    ("speedup_compiled_vs_interpreter_1_worker",),
    ("cascade", "speedup_compiled_vs_naive_1_worker"),
    # Serving path: jobs/sec at 2 platforms over 1 platform.  A ratio of two
    # same-machine measurements, like the speedups above; on a single-core
    # host it sits at ~1.0, on multi-core hosts above it — the gate only
    # fires if pool scaling regresses >20% below the committed baseline.
    ("service_throughput", "scaling_2_platforms"),
    # Incremental plan patching: ns/candidate of a fresh compile over a
    # parent-plan patch (diff + rewrite of only the mutated genes).
    ("plan_compile", "patch_speedup"),
    # Window memory layout: full-image evals/sec of the SoA plane path over
    # the AoS gather path, same plan, single worker.
    ("window_layout", "plane_speedup"),
    # Reference filters routed through WindowPlanes over the legacy
    # per-window kernel stream (byte-identity gated in the bench itself).
    ("reference_filters", "plane_speedup"),
    # Cross-job cache: warm-start evaluations-to-target over a cold start
    # (champion-library seeding) and the fitness-cache hit rate of a
    # replayed same-image batch.  Recorded, not yet gated — no committed
    # baseline exists until this summary lands.
    ("cross_job_cache", "warm_speedup"),
    ("cross_job_cache", "hit_rate"),
    # Fault-scenario layer: schedule compilation throughput (events/sec,
    # higher is better — the ns/event figure is recorded alongside for
    # readability) and the generalised campaign executor's evals/sec plus
    # its ratio to the legacy sweep (byte-identity gated in the bench
    # itself; ~1.0 means the abstraction is free).  Recorded, not yet
    # gated — no committed baseline exists until this summary lands.
    ("resilience", "schedule_compile_events_per_sec"),
    ("resilience", "campaign_evals_per_sec"),
    ("resilience", "scenario_vs_legacy_ratio"),
    # Streaming engine: steady-state filtering throughput with a trained
    # incumbent (frames/sec) and the warm-vs-cold bootstrap evaluations gap
    # when seeding from a champion.  `frames_to_recover` is recorded in the
    # summary but not gated here — the gate is higher-is-better and recovery
    # latency is lower-is-better.  Recorded, not yet gated — no committed
    # baseline exists until this summary lands.
    ("streaming", "frames_per_sec_steady_state"),
    ("streaming", "warm_bootstrap_speedup"),
]

# Gated even when the committed baseline lacks them: these ratios have
# landed baselines, so "missing" means the summary (or the bench) lost the
# section, not that the metric is new.
REQUIRE_BASELINE = {
    ("plan_compile", "patch_speedup"),
    ("window_layout", "plane_speedup"),
}


def lookup(doc, path):
    node = doc
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        sys.stderr.write(__doc__)
        return 2
    max_regression = 0.20
    for a in argv[1:]:
        if a.startswith("--max-regression="):
            max_regression = float(a.split("=", 1)[1])

    with open(args[0]) as f:
        baseline = json.load(f)
    with open(args[1]) as f:
        fresh = json.load(f)

    failures = []
    for path in TRACKED:
        name = ".".join(path)
        base = lookup(baseline, path)
        new = lookup(fresh, path)
        if new is None:
            failures.append(f"{name}: missing from the fresh summary")
            continue
        if base is None:
            if path in REQUIRE_BASELINE:
                failures.append(
                    f"{name}: missing from the baseline — this metric is "
                    f"gated and must not drop out of the committed summary"
                )
            else:
                print(f"{name}: {new:.2f} (no baseline yet — recorded, not gated)")
            continue
        floor = base * (1.0 - max_regression)
        status = "OK" if new >= floor else "REGRESSION"
        print(f"{name}: baseline {base:.2f} -> fresh {new:.2f} (floor {floor:.2f}) {status}")
        if new < floor:
            failures.append(
                f"{name} regressed: {new:.2f} < {floor:.2f} "
                f"({max_regression:.0%} below baseline {base:.2f})"
            )

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
