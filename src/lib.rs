//! Workspace root for the multi-array evolvable hardware platform
//! reproduction (conf_ipps_GallegoMOSTR13).
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable scenarios (`examples/`); the actual functionality
//! lives in the member crates, re-exported here for convenience:
//!
//! * [`ehw_fabric`] — frame-accurate FPGA configuration-memory model
//!   (frames, partial bitstreams, SEU/LPD faults, scrubbing),
//! * [`ehw_reconfig`] — the serialized ICAP reconfiguration engine and the
//!   paper's timing model,
//! * [`ehw_image`] — grayscale images, 3×3 windows, noise models, reference
//!   filters and fitness metrics,
//! * [`ehw_array`] — the 4×4 systolic processing array and its CGP-style
//!   genotype,
//! * [`ehw_evolution`] — the (1+λ) evolution strategies, classic and
//!   two-level mutation,
//! * [`ehw_platform`] — the multi-array platform: ACBs, processing and
//!   evolution modes, self-healing, timing and resource models.

#![warn(missing_docs)]

pub use ehw_array;
pub use ehw_evolution;
pub use ehw_fabric;
pub use ehw_image;
pub use ehw_platform;
pub use ehw_reconfig;
