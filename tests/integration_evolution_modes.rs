//! Cross-crate integration tests for the evolution modes of §IV.B, exercising
//! the full path: image substrate → evolutionary strategy → platform
//! reconfiguration → fitness measurement.

use ehw_evolution::strategy::{EsConfig, MutationStrategy, NullObserver};
use ehw_image::filters;
use ehw_image::metrics::mae;
use ehw_image::noise::salt_pepper;
use ehw_image::synth;
use ehw_platform::evo_modes::{
    chain_fitness, evolve_cascade, evolve_imitation, evolve_parallel, evolve_same_filter_cascade,
    CascadeConfig, EvolutionTask, ImitationStart,
};
use ehw_platform::modes::CascadeSchedule;
use ehw_platform::platform::EhwPlatform;
use ehw_platform::timing::PipelineTimer;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn denoise_task(size: usize, density: f64, seed: u64) -> EvolutionTask {
    let clean = synth::shapes(size, size, 4);
    let mut rng = StdRng::seed_from_u64(seed);
    let noisy = salt_pepper(&clean, density, &mut rng);
    EvolutionTask::new(noisy, clean)
}

#[test]
fn parallel_evolution_beats_identity_and_updates_platform() {
    let mut platform = EhwPlatform::paper_three_arrays();
    let task = denoise_task(32, 0.4, 1);
    let identity_fitness = mae(&task.input, &task.reference);

    let config = EsConfig::paper(3, 3, 120, 7);
    let (result, time) = evolve_parallel(&mut platform, &task, &config);

    assert!(result.best_fitness < identity_fitness);
    assert!(time.total_s > 0.0);
    assert_eq!(time.generations, 120);

    // The evolved circuit is configured in all three arrays and reproduces
    // the reported fitness when re-measured through the platform.
    let measured = mae(&platform.acb(0).raw_output(&task.input), &task.reference);
    assert_eq!(measured, result.best_fitness);
    for i in 1..3 {
        assert_eq!(platform.acb(i).genotype(), platform.acb(0).genotype());
    }
}

#[test]
fn three_arrays_reduce_modelled_evolution_time_at_equal_quality() {
    // The headline claim of Fig. 12, at integration level: the same EA run
    // costs less model time on three arrays than on one, because candidate
    // evaluations overlap.  The paper's 128×128 image size makes the saved
    // evaluation time dominate any difference in reconfiguration counts.
    let task = denoise_task(128, 0.3, 3);
    let config = EsConfig::paper(3, 1, 30, 13);

    let mut single = EhwPlatform::new(1);
    let (result_single, time_single) = evolve_parallel(&mut single, &task, &config);

    let mut triple = EhwPlatform::paper_three_arrays();
    let (result_triple, time_triple) = evolve_parallel(&mut triple, &task, &config);

    assert!(time_triple.total_s < time_single.total_s);
    // Quality is statistically equivalent; with the same seed and number of
    // generations neither run can be worse than its own start.
    assert!(result_single.best_fitness <= result_single.initial_fitness);
    assert!(result_triple.best_fitness <= result_triple.initial_fitness);
}

#[test]
fn two_level_ea_is_faster_per_generation_than_classic() {
    // Fig. 14 at integration level: with the same budget the two-level EA
    // spends less model time because secondary offspring only touch one PE.
    let task = denoise_task(24, 0.3, 5);
    let classic_cfg = EsConfig::paper(5, 3, 60, 17);
    let two_level_cfg = EsConfig {
        strategy: MutationStrategy::two_level(),
        ..classic_cfg
    };

    let mut classic_platform = EhwPlatform::paper_three_arrays();
    let (_, classic_time) = evolve_parallel(&mut classic_platform, &task, &classic_cfg);
    let mut two_level_platform = EhwPlatform::paper_three_arrays();
    let (_, two_level_time) = evolve_parallel(&mut two_level_platform, &task, &two_level_cfg);

    assert!(two_level_time.total_s < classic_time.total_s);
    assert!(two_level_time.pe_reconfigurations < classic_time.pe_reconfigurations);
}

#[test]
fn adapted_cascade_beats_replicating_the_same_filter() {
    // Figs. 16-17: specialising each stage beats configuring the same circuit
    // in every stage.
    let task = denoise_task(32, 0.4, 9);

    let mut same_platform = EhwPlatform::paper_three_arrays();
    let same =
        evolve_same_filter_cascade(&mut same_platform, &task, &EsConfig::paper(2, 1, 150, 21));

    let mut adapted_platform = EhwPlatform::paper_three_arrays();
    let adapted = evolve_cascade(
        &mut adapted_platform,
        &task,
        &CascadeConfig {
            schedule: CascadeSchedule::Interleaved,
            ..CascadeConfig::paper(50, 2, 21)
        },
    );

    let adapted_final = adapted.final_fitness().expect("three stages");
    let same_final = same.final_fitness().expect("three stages");
    assert!(
        adapted_final <= same_final,
        "adapted {adapted_final} vs same-filter {same_final}"
    );

    // chain_fitness agrees with the result the cascade reported.
    let recheck = chain_fitness(&adapted_platform, &task.input, &task.reference);
    assert_eq!(recheck, adapted.stage_fitness);
}

#[test]
fn imitation_learns_an_edge_detector_without_its_reference() {
    // Array 0 holds an evolved edge-ish filter; array 1 learns it purely by
    // imitation (no Sobel reference is ever shown to array 1).
    let scene = synth::shapes(32, 32, 4);
    let edges = filters::sobel_edge(&scene);
    let task = EvolutionTask::new(scene.clone(), edges);

    let mut platform = EhwPlatform::new(2);
    let config = EsConfig::paper(3, 2, 120, 31);
    // Evolve only array 0 (parallel over a single-array platform would also
    // work; here we configure array 0 and keep array 1 untouched).
    let mut single = EhwPlatform::new(1);
    let (evolved, _) = evolve_parallel(&mut single, &task, &config);
    platform.configure_array(0, &evolved.best_genotype);

    let recovery = EsConfig {
        target_fitness: Some(0),
        ..EsConfig::paper(1, 1, 50, 37)
    };
    let result = evolve_imitation(
        &mut platform,
        1,
        0,
        &scene,
        &recovery,
        ImitationStart::FromMaster,
        &mut NullObserver,
    );
    // Starting from the master genotype on a healthy array the copy is exact.
    assert_eq!(result.best_fitness, 0);
    assert_eq!(
        platform.acb(1).raw_output(&scene),
        platform.acb(0).raw_output(&scene)
    );
}

#[test]
fn pipeline_timer_integrates_with_a_real_evolution_run() {
    let task = denoise_task(24, 0.3, 41);
    let mut platform = EhwPlatform::paper_three_arrays();
    let mut timer = PipelineTimer::paper(3, 24, 24);
    let config = EsConfig::paper(3, 3, 30, 43);

    // Run evolution manually against the platform evaluator to check that the
    // observer hook composes outside of evolve_parallel as well.
    let mut evaluator = ehw_platform::evo_modes::PlatformEvaluator::new(&platform, &task);
    let result = ehw_evolution::strategy::run_evolution(&config, &mut evaluator, &mut timer);
    platform.configure_all_arrays(&result.best_genotype);

    let estimate = timer.estimate();
    assert_eq!(estimate.generations, 30);
    assert_eq!(estimate.candidates, 30 * 9);
    assert_eq!(
        estimate.pe_reconfigurations,
        result.total_pe_reconfigurations
    );
    assert!(estimate.total_s > 0.0);
}
