//! Cross-crate integration tests: platform assembly, processing modes and the
//! reconfiguration path from genotype to configuration frames.

use ehw_array::genotype::Genotype;
use ehw_array::pe::PeFunction;
use ehw_fabric::fault::FaultKind;
use ehw_image::filters;
use ehw_image::metrics::mae;
use ehw_image::synth;
use ehw_platform::platform::EhwPlatform;
use ehw_platform::registers::{AcbRegister, RegisterFile};
use ehw_platform::voter::PixelVoter;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn genotype_configuration_reaches_the_configuration_memory() {
    let mut platform = EhwPlatform::paper_three_arrays();
    let mut rng = StdRng::seed_from_u64(1);
    let genotype = Genotype::random(&mut rng);

    let frames_before = platform.engine().memory().write_count();
    platform.configure_array(1, &genotype);
    let frames_after = platform.engine().memory().write_count();

    // Every differing PE gene produced frame writes through the engine.
    let expected_pes = genotype.pe_reconfigurations_from(&Genotype::identity()) as u64;
    assert!(frames_after > frames_before);
    assert_eq!(
        platform.reconfig_stats().pe_reconfigurations,
        48 + expected_pes // 48 from the initial bring-up of three arrays
    );

    // The busy time matches the paper's 67.53 µs per PE.
    let expected_time = (48 + expected_pes) as f64 * 67.53e-6;
    assert!((platform.reconfig_stats().busy_time_s - expected_time).abs() < 1e-9);
}

#[test]
fn cascaded_processing_composes_stage_functions() {
    let mut platform = EhwPlatform::paper_three_arrays();

    // Stage 0: erosion-like (min of centre and NW); stages 1-2: identity.
    let mut g = Genotype::identity();
    g.pe_genes[0] = PeFunction::Min.gene();
    g.input_genes[0] = 0;
    platform.configure_array(0, &g);

    let img = synth::shapes(32, 32, 4);
    let outputs = platform.process_cascaded(&img);

    // Stage 0 output equals the single-array filtering of the same genotype.
    assert_eq!(outputs[0], platform.acb(0).raw_output(&img));
    // Stages 1 and 2 are identity, so they forward stage 0's output.
    assert_eq!(outputs[1], outputs[0]);
    assert_eq!(outputs[2], outputs[0]);
}

#[test]
fn parallel_processing_with_identical_circuits_agrees_bit_exactly() {
    let mut platform = EhwPlatform::paper_three_arrays();
    let mut rng = StdRng::seed_from_u64(5);
    let genotype = Genotype::random(&mut rng);
    platform.configure_all_arrays(&genotype);

    let img = synth::paper_scene_128();
    let outputs = platform.process_parallel(&img);
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);

    let vote = PixelVoter.vote([&outputs[0], &outputs[1], &outputs[2]]);
    assert_eq!(vote.disagreeing_pixels, 0);
    assert_eq!(vote.image, outputs[0]);
}

#[test]
fn register_file_reflects_platform_configuration() {
    let mut platform = EhwPlatform::new(2);
    let mut g = Genotype::identity();
    g.input_genes = [0, 1, 2, 3, 5, 6, 7, 8];
    g.output_gene = 2;
    platform.configure_array(1, &g);

    for (i, &sel) in g.input_genes.iter().enumerate() {
        assert_eq!(
            platform
                .registers()
                .peek(RegisterFile::input_select_address(1, i)),
            sel as u32
        );
    }
    assert_eq!(
        platform
            .registers()
            .peek(RegisterFile::address(1, AcbRegister::OutputSelect)),
        2
    );
    // Latency register: output row 2 ⇒ 4 + 2 pipeline cycles + window cycles.
    assert_eq!(
        platform
            .registers()
            .peek(RegisterFile::address(1, AcbRegister::Latency)),
        platform.acb(1).latency().total_cycles() as u32
    );
}

#[test]
fn evolved_identity_and_reference_filters_compose_with_platform() {
    // The reference-filter substrate and the platform agree on what the
    // identity configuration does, so evolved-vs-conventional comparisons
    // (Fig. 18) are apples to apples.
    let platform = EhwPlatform::new(1);
    let img = synth::shapes(48, 48, 5);
    let identity_out = platform.acb(0).raw_output(&img);
    assert_eq!(identity_out, filters::ReferenceFilter::Identity.apply(&img));
    assert_eq!(mae(&identity_out, &img), 0);
}

#[test]
fn faults_in_different_arrays_are_independent() {
    let mut platform = EhwPlatform::paper_three_arrays();
    let img = synth::shapes(32, 32, 3);
    let clean: Vec<_> = (0..3).map(|i| platform.acb(i).raw_output(&img)).collect();

    platform.inject_pe_fault(0, 0, 3, FaultKind::Lpd);
    assert_ne!(platform.acb(0).raw_output(&img), clean[0]);
    assert_eq!(platform.acb(1).raw_output(&img), clean[1]);
    assert_eq!(platform.acb(2).raw_output(&img), clean[2]);

    // Scrubbing array 1 (healthy) changes nothing; scrubbing array 0 cannot
    // repair a permanent fault.
    platform.scrub_array(1);
    platform.scrub_array(0);
    assert_ne!(platform.acb(0).raw_output(&img), clean[0]);
    assert!(platform.array_has_permanent_fault(0));
}

#[test]
fn platform_scales_from_one_to_six_arrays() {
    for n in 1..=6 {
        let platform = EhwPlatform::new(n);
        assert_eq!(platform.num_arrays(), n);
        assert_eq!(platform.floorplan().arrays(), n);
        assert_eq!(
            platform.reconfig_stats().pe_reconfigurations,
            (n * 16) as u64
        );
        let img = synth::gradient(16, 16);
        assert_eq!(platform.process_cascaded(&img).len(), n);
        assert_eq!(platform.process_parallel(&img).len(), n);
    }
}
