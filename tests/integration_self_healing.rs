//! Cross-crate integration tests for the self-healing strategies of §V:
//! fault classification by scrubbing, bypass + imitation recovery in cascaded
//! mode, and TMR surveillance in parallel mode.

use ehw_evolution::strategy::EsConfig;
use ehw_fabric::fault::FaultKind;
use ehw_image::metrics::mae;
use ehw_image::noise::salt_pepper;
use ehw_image::synth;
use ehw_platform::evo_modes::{evolve_parallel, EvolutionTask};
use ehw_platform::platform::EhwPlatform;
use ehw_platform::self_healing::{
    CascadedSelfHealing, HealingOutcome, RecoveryConfig, RecoveryMethod, TmrSupervisor,
};
use ehw_platform::voter::FitnessVote;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Evolves a working denoising filter and configures it in every array.
fn evolved_platform(arrays: usize, seed: u64) -> (EhwPlatform, EvolutionTask) {
    let clean = synth::shapes(32, 32, 4);
    let mut rng = StdRng::seed_from_u64(seed);
    let noisy = salt_pepper(&clean, 0.3, &mut rng);
    let task = EvolutionTask::new(noisy, clean);
    let mut platform = EhwPlatform::new(arrays);
    let config = EsConfig::paper(3, 2, 80, seed);
    let _ = evolve_parallel(&mut platform, &task, &config);
    (platform, task)
}

/// The PE that is guaranteed to sit on the active data path of the
/// configured circuit (last column of the selected output row).
fn critical_pe(platform: &EhwPlatform, array: usize) -> (usize, usize) {
    (
        platform.acb(array).genotype().output_gene as usize,
        ehw_array::genotype::ARRAY_COLS - 1,
    )
}

#[test]
fn full_cascaded_self_healing_cycle_with_lost_reference() {
    // §V.A end to end: calibrate → inject permanent fault → detect → scrub →
    // classify as permanent → bypass → recover by imitation → resume.
    let (mut platform, task) = evolved_platform(3, 1);
    let mut supervisor = CascadedSelfHealing::calibrate(&platform, task.input.clone());

    let (row, col) = critical_pe(&platform, 1);
    platform.inject_pe_fault(1, row, col, FaultKind::Lpd);
    assert!(supervisor.deviations(&platform)[1] > 0);

    // The reference image is "lost": recovery must go through imitation.
    let recovery = RecoveryConfig {
        es: EsConfig {
            target_fitness: Some(0),
            ..EsConfig::paper(1, 1, 150, 7)
        },
        reference: None,
    };
    let events = supervisor.check_and_heal(&mut platform, &recovery);

    assert_eq!(events[0].outcome, HealingOutcome::NoFaultDetected);
    assert_eq!(events[2].outcome, HealingOutcome::NoFaultDetected);
    match events[1].outcome {
        HealingOutcome::PermanentRecovered {
            method: RecoveryMethod::Imitation { .. },
            residual_fitness,
        } => {
            // The apprentice starts from the master genotype, so recovery can
            // never leave it worse than the damaged state it was detected in.
            let damaged_fitness = supervisor.deviations(&platform)[1];
            assert!(residual_fitness >= damaged_fitness || damaged_fitness == 0);
        }
        other => panic!("expected imitation recovery, got {other:?}"),
    }

    // The platform keeps processing with the chain intact (no bypass left).
    assert!((0..3).all(|i| !platform.acb(i).is_bypassed()));
    // A further check pass reports a healthy platform.
    let again = supervisor.check_and_heal(&mut platform, &recovery);
    assert!(again
        .iter()
        .all(|e| e.outcome == HealingOutcome::NoFaultDetected));
}

#[test]
fn transient_faults_never_trigger_re_evolution() {
    let (mut platform, task) = evolved_platform(3, 3);
    let mut supervisor = CascadedSelfHealing::calibrate(&platform, task.input.clone());

    for array in 0..3 {
        let (row, col) = critical_pe(&platform, array);
        platform.inject_pe_fault(array, row, col, FaultKind::Seu);
    }
    let evaluations_before = platform.reconfig_stats().pe_reconfigurations;
    let recovery = RecoveryConfig {
        es: EsConfig::paper(1, 1, 50, 11),
        reference: None,
    };
    let events = supervisor.check_and_heal(&mut platform, &recovery);
    assert!(events
        .iter()
        .all(|e| e.outcome == HealingOutcome::TransientScrubbed));
    // Scrubbing rewrites frames but evolves nothing: no new PE
    // reconfigurations were requested by an evolutionary run.
    assert_eq!(
        platform.reconfig_stats().pe_reconfigurations,
        evaluations_before
    );
}

#[test]
fn tmr_keeps_the_output_stream_valid_under_a_single_fault() {
    // §V.B: the pixel voter masks the fault while the fitness voter diagnoses
    // the damaged array — the availability argument of the paper.
    let (mut platform, task) = evolved_platform(3, 5);
    let reference = platform.acb(0).raw_output(&task.input);
    let supervisor = TmrSupervisor::new(0);

    let healthy_step = supervisor.process(&platform, &task.input, &reference);
    assert_eq!(healthy_step.vote, FitnessVote::Agreement);

    let (row, col) = critical_pe(&platform, 2);
    platform.inject_pe_fault(2, row, col, FaultKind::Lpd);
    let faulty_step = supervisor.process(&platform, &task.input, &reference);

    assert_eq!(faulty_step.faulty_array(), Some(2));
    // The voted output is unaffected by the single faulty array.
    assert_eq!(mae(&faulty_step.voted_output, &reference), 0);
    assert!(faulty_step.fitnesses[2] > faulty_step.fitnesses[0]);
}

#[test]
fn tmr_step_and_heal_restores_agreement_after_a_transient() {
    let (mut platform, task) = evolved_platform(3, 7);
    let reference = platform.acb(0).raw_output(&task.input);
    let supervisor = TmrSupervisor::new(0);

    let (row, col) = critical_pe(&platform, 0);
    platform.inject_pe_fault(0, row, col, FaultKind::Seu);

    let recovery = EsConfig::paper(1, 1, 30, 13);
    let (step, event) = supervisor.step_and_heal(&mut platform, &task.input, &reference, &recovery);
    assert_eq!(step.faulty_array(), Some(0));
    assert_eq!(
        event.expect("divergence detected").outcome,
        HealingOutcome::TransientScrubbed
    );

    let after = supervisor.process(&platform, &task.input, &reference);
    assert_eq!(after.vote, FitnessVote::Agreement);
    assert_eq!(after.disagreeing_pixels, 0);
}

#[test]
fn tmr_permanent_fault_recovery_keeps_the_voter_consistent() {
    let (mut platform, task) = evolved_platform(3, 9);
    let reference = platform.acb(0).raw_output(&task.input);
    // A tolerant threshold absorbs the residual fitness offset of a recovered
    // filter, as §V.B recommends.
    let supervisor = TmrSupervisor::new(500);

    let (row, col) = critical_pe(&platform, 1);
    platform.inject_pe_fault(1, row, col, FaultKind::Lpd);

    let recovery = EsConfig {
        target_fitness: Some(0),
        ..EsConfig::paper(1, 1, 120, 17)
    };
    let (_, event) = supervisor.step_and_heal(&mut platform, &task.input, &reference, &recovery);
    let outcome = event.expect("divergence detected").outcome;
    match outcome {
        HealingOutcome::PermanentRecovered {
            method: RecoveryMethod::Imitation { exact },
            ..
        } => {
            if exact {
                // An exact copy: the recovered array is functionally identical
                // to its healthy sibling on the mission stream.
                assert_eq!(
                    mae(
                        &platform.acb(1).raw_output(&task.input),
                        &platform.acb(0).raw_output(&task.input)
                    ),
                    0
                );
            } else {
                // §V.B step h: the recovered configuration was pasted into
                // every array, so the three copies hold the same genotype and
                // the voter remains meaningful.
                assert_eq!(platform.acb(0).genotype(), platform.acb(1).genotype());
                assert_eq!(platform.acb(0).genotype(), platform.acb(2).genotype());
            }
        }
        other => panic!("expected imitation recovery, got {other:?}"),
    }
}
