//! Integration tests for the quantitative models of §VI.A–B: resource
//! utilisation, reconfiguration timing and the generation pipeline.  These are
//! the invariants the experiment binaries rely on when regenerating the
//! paper's tables and figures.

use ehw_fabric::device::{DeviceGeometry, ARRAY_CLBS};
use ehw_fabric::resources::ResourceUsage;
use ehw_platform::platform::EhwPlatform;
use ehw_platform::resources::PlatformResources;
use ehw_platform::timing::{analytic_generation_time, PipelineTimer};
use ehw_reconfig::timing::{TimingModel, PE_RECONFIG_TIME_US};

#[test]
fn paper_resource_table_is_reproduced() {
    // §VI.A, for the three-stage platform of Fig. 10.
    let r = PlatformResources::paper_three_stage();
    assert_eq!(r.static_control, ResourceUsage::new(733, 1365, 1817));
    assert_eq!(r.per_acb, ResourceUsage::new(754, 1642, 1528));
    assert_eq!(
        r.total_acb_logic(),
        ResourceUsage::new(3 * 754, 3 * 1642, 3 * 1528)
    );
    assert_eq!(r.array_clbs, 3 * ARRAY_CLBS);
    assert_eq!(r.array_clbs, 480);
    assert!((r.pe_reconfig_us - 67.53).abs() < 1e-9);

    // The three arrays fit comfortably on the LX110T.
    let geometry = DeviceGeometry::virtex5_lx110t();
    assert!(geometry.max_arrays() >= 3);
    assert!(r.device_occupancy < 0.1);
}

#[test]
fn platform_reconfiguration_time_matches_published_per_pe_cost() {
    // Bringing up a three-array platform writes 48 PEs; the engine must
    // account exactly 48 × 67.53 µs of busy time.
    let platform = EhwPlatform::paper_three_arrays();
    let stats = platform.reconfig_stats();
    assert_eq!(stats.pe_reconfigurations, 48);
    let expected = 48.0 * PE_RECONFIG_TIME_US * 1e-6;
    assert!((stats.busy_time_s - expected).abs() < 1e-9);
}

#[test]
fn evolution_time_model_reproduces_figure_12_and_13_shapes() {
    // Average generation durations over the mutation-rate sweep, for one and
    // three arrays, at both image sizes — the data behind Figs. 12 and 13.
    let timing = TimingModel::paper();
    let gens = 100_000.0;

    let total = |k: usize, arrays: usize, size: usize| {
        analytic_generation_time(&timing, 9, k, arrays, size, size) * gens
    };

    // For 128×128 images the single reconfiguration engine is the bottleneck,
    // so the saving of the 3-array pipeline is essentially constant across
    // mutation rates (Fig. 12).  For 256×256 images evaluation dominates and
    // the saving grows mildly with k in our pipeline model — the paper still
    // reports it as "around 200 s", so we only require it to stay within a
    // moderate band there.
    for (size, max_spread) in [(128usize, 0.06), (256usize, 0.30)] {
        let mut previous_single = 0.0;
        let mut savings = Vec::new();
        for &k in &[1usize, 3, 5] {
            let single = total(k, 1, size);
            let triple = total(k, 3, size);
            // Evolution time grows with the mutation rate (more serialized
            // reconfiguration per candidate).
            assert!(single > previous_single);
            previous_single = single;
            // Three arrays are always faster.
            assert!(triple < single);
            savings.push(single - triple);
        }
        let min = savings.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = savings.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            (max - min) / max < max_spread,
            "savings spread too wide for {size}: {savings:?}"
        );
    }

    // The saving scales with the image size (Fig. 13): 256×256 images are
    // four times larger, so the constant saving is roughly four times bigger.
    let saving_128 = total(3, 1, 128) - total(3, 3, 128);
    let saving_256 = total(3, 1, 256) - total(3, 3, 256);
    let ratio = saving_256 / saving_128;
    assert!(ratio > 3.0 && ratio < 5.0, "ratio = {ratio}");

    // Orders of magnitude match the paper: 100 000 generations of the
    // single-array 128×128 setup take minutes, not hours.
    let single_128_k5 = total(5, 1, 128);
    assert!(
        single_128_k5 > 60.0 && single_128_k5 < 2_000.0,
        "t = {single_128_k5}"
    );
}

#[test]
fn two_level_mutation_reduces_per_generation_time() {
    // Fig. 14's mechanism: secondary offspring differ in at most one PE, so a
    // generation mixing k-rate and 1-rate candidates is cheaper than nine
    // k-rate candidates.
    let timer = PipelineTimer::paper(3, 128, 128);
    for &k in &[3usize, 5] {
        let classic = timer.generation_time(&[k; 9]);
        let mut two_level = vec![k; 3];
        two_level.extend_from_slice(&[1; 6]);
        let new_ea = timer.generation_time(&two_level);
        assert!(new_ea < classic);
        // And the dependence on k is weaker: going from k=3 to k=5 changes the
        // two-level time less than it changes the classic time.
    }
    let classic_delta = timer.generation_time(&[5; 9]) - timer.generation_time(&[3; 9]);
    let two_level_delta = {
        let mut five = vec![5; 3];
        five.extend_from_slice(&[1; 6]);
        let mut three = vec![3; 3];
        three.extend_from_slice(&[1; 6]);
        timer.generation_time(&five) - timer.generation_time(&three)
    };
    assert!(two_level_delta < classic_delta);
}

#[test]
fn icap_speed_ablation_shifts_the_crossover() {
    // Ablation: with a faster ICAP the reconfiguration bottleneck shrinks and
    // the three-array speed-up grows; with a slower ICAP it shrinks.
    let nominal = TimingModel::paper();
    let fast_icap = TimingModel::paper().with_icap_scale(4.0);
    let slow_icap = TimingModel::paper().with_icap_scale(0.25);

    let speedup = |timing: &TimingModel| {
        let single = analytic_generation_time(timing, 9, 3, 1, 128, 128);
        let triple = analytic_generation_time(timing, 9, 3, 3, 128, 128);
        single / triple
    };

    let nominal_speedup = speedup(&nominal);
    assert!(speedup(&fast_icap) > nominal_speedup);
    assert!(speedup(&slow_icap) < nominal_speedup);
}

#[test]
fn resource_model_scales_with_the_number_of_arrays() {
    let mut previous = 0u32;
    for arrays in 1..=6 {
        let r = PlatformResources::for_arrays(arrays);
        let total = r.total_static_logic();
        assert!(total.slices > previous);
        previous = total.slices;
        // Static control is constant; ACB logic strictly linear.
        assert_eq!(r.static_control, ResourceUsage::paper_static_control());
        assert_eq!(
            r.total_acb_logic(),
            ResourceUsage::paper_acb().scaled(arrays as u32)
        );
    }
}
