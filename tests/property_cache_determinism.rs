//! Cross-job cache determinism suite.
//!
//! The cross-job cache (shared windows, fitness memo, champion library) is
//! an *accelerator*, never an oracle: every hit returns exactly the bytes
//! the miss path would have computed.  These properties pin that contract:
//!
//! 1. **Cache transparency** — mixed batches (same-image and distinct-image
//!    jobs, including an identical-spec replay) produce byte-identical
//!    [`JobResult`]s with the cache on and off, across 1/2 platforms ×
//!    1/2/8 workers, while the cache-on run observably hits.
//! 2. **Eviction under pressure** — a cache squeezed to toy capacities
//!    evicts (observably) and still changes nothing about the results.
//! 3. **Warm-start provenance** — opting in is recorded honestly: the first
//!    job under a key runs cold but deposits its champion; the next one is
//!    seeded from it (its initial fitness *is* the champion's fitness); jobs
//!    that never opted in carry no key.

use ehw_image::noise::salt_pepper;
use ehw_image::synth;
use ehw_platform::evo_modes::EvolutionTask;
use ehw_service::{CrossJobCacheConfig, EhwService, JobResult, JobSpec, ServiceConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn denoise_task(size: usize, seed: u64) -> EvolutionTask {
    let clean = synth::shapes(size, size, 3);
    let mut rng = StdRng::seed_from_u64(seed);
    let noisy = salt_pepper(&clean, 0.3, &mut rng);
    EvolutionTask::new(noisy, clean)
}

/// Everything observable about a job result, in comparable form — including
/// the engine stats, which the cache must also leave untouched.
#[allow(clippy::type_complexity)]
fn fingerprint(result: &JobResult) -> (u64, u64, Vec<Vec<u8>>, Vec<u64>, (u64, u64, u64), bool) {
    (
        result.seed,
        result.evaluations,
        result.genotypes().iter().map(|g| g.encode()).collect(),
        result.history().to_vec(),
        (
            result.stats.plans_evaluated,
            result.stats.memo_hits,
            result.stats.early_exits,
        ),
        result.warm_started,
    )
}

/// A batch that exercises every sharing pattern: two identical specs (a
/// replay the fitness cache can answer), a same-image sibling with a
/// different seed, a distinct-image job, a wider platform shape on the
/// shared image, and a cascade job (which bypasses the cache entirely).
fn mixed_specs(shared: &EvolutionTask, distinct: &EvolutionTask) -> Vec<JobSpec> {
    vec![
        JobSpec::evolution(shared.input.clone(), shared.reference.clone())
            .generations(4)
            .seed(11)
            .build()
            .unwrap(),
        JobSpec::evolution(shared.input.clone(), shared.reference.clone())
            .generations(4)
            .seed(11)
            .build()
            .unwrap(),
        JobSpec::evolution(shared.input.clone(), shared.reference.clone())
            .generations(4)
            .seed(12)
            .build()
            .unwrap(),
        JobSpec::evolution(distinct.input.clone(), distinct.reference.clone())
            .generations(4)
            .seed(13)
            .build()
            .unwrap(),
        JobSpec::evolution(shared.input.clone(), shared.reference.clone())
            .num_arrays(2)
            .generations(4)
            .seed(14)
            .build()
            .unwrap(),
        JobSpec::cascade(shared.input.clone(), shared.reference.clone())
            .stages(2)
            .generations(3)
            .seed(15)
            .build()
            .unwrap(),
    ]
}

// ----------------------------------------------------------------------
// 1. Cache transparency across pool shapes
// ----------------------------------------------------------------------

#[test]
fn mixed_batches_are_byte_identical_with_the_cache_on_and_off() {
    let shared = denoise_task(12, 0xA11CE);
    let distinct = denoise_task(12, 0xB0B);
    let run = |cache: bool, platforms: usize, workers: usize| {
        let service = EhwService::new(
            ServiceConfig::new(platforms)
                .workers_per_platform(workers)
                .seed(99)
                .cache(cache),
        )
        .expect("valid config");
        let results = service
            .run_batch(mixed_specs(&shared, &distinct))
            .expect("batch accepted");
        let stats = service.stats();
        (results.iter().map(fingerprint).collect::<Vec<_>>(), stats)
    };

    let (reference, off_stats) = run(false, 1, 1);
    assert_eq!(off_stats.cache.fitness_hits, 0, "cache off must not count");
    for cache in [false, true] {
        for &(platforms, workers) in &[(1usize, 2usize), (1, 8), (2, 1), (2, 8)] {
            let (got, _) = run(cache, platforms, workers);
            assert_eq!(
                got, reference,
                "diverged at cache={cache}, {platforms} platforms x {workers} workers"
            );
        }
    }

    // The transparency above is not vacuous: a sequential cache-on run
    // actually hits — the identical-spec replay answers from the fitness
    // cache and every same-image sibling shares one window extraction.
    let (got, on_stats) = run(true, 1, 1);
    assert_eq!(got, reference);
    assert!(on_stats.cache.fitness_hits > 0, "{:?}", on_stats.cache);
    assert!(on_stats.cache.windows_hits > 0, "{:?}", on_stats.cache);
    assert!(
        on_stats.cache.champions_deposited > 0,
        "{:?}",
        on_stats.cache
    );
}

/// Same training input, *different* reference targets: fitness is MAE
/// against the reference, so the fitness key must separate these jobs even
/// though their inputs (and, with pinned equal seeds, their candidate
/// genotype streams) are identical.  A key that omitted the reference would
/// serve job B job A's cached values — byte-divergence the mixed-batch
/// property above can never catch, because it only varies the input.
#[test]
fn same_input_with_differing_references_never_shares_fitness() {
    let denoise = denoise_task(12, 0xA5A5);
    // Same noisy input, evolved toward a different target entirely.
    let other_target = synth::shapes(12, 12, 5);
    let specs = || {
        vec![
            JobSpec::evolution(denoise.input.clone(), denoise.reference.clone())
                .generations(4)
                .seed(31)
                .build()
                .unwrap(),
            JobSpec::evolution(denoise.input.clone(), other_target.clone())
                .generations(4)
                .seed(31)
                .build()
                .unwrap(),
        ]
    };
    let run = |cache: bool| {
        let service = EhwService::new(ServiceConfig::new(1).seed(17).cache(cache)).unwrap();
        let results = service.run_batch(specs()).expect("batch accepted");
        let stats = service.stats();
        (results.iter().map(fingerprint).collect::<Vec<_>>(), stats)
    };
    let (reference, _) = run(false);
    let (got, on_stats) = run(true);
    assert_eq!(got, reference, "reference image leaked through the cache");
    // Not vacuous: both jobs share one window extraction (same input) and
    // with equal seeds their genotype streams overlap, so the second job
    // *looks up* keys the first one inserted — and must miss on all of them.
    assert!(on_stats.cache.windows_hits > 0, "{:?}", on_stats.cache);
    assert_eq!(
        on_stats.cache.fitness_hits, 0,
        "distinct references must never hit: {:?}",
        on_stats.cache
    );
}

// ----------------------------------------------------------------------
// 2. Eviction under pressure changes nothing
// ----------------------------------------------------------------------

#[test]
fn a_cache_squeezed_to_toy_capacities_evicts_but_stays_transparent() {
    let shared = denoise_task(12, 0xD1CE);
    let distinct = denoise_task(12, 0xFEED);

    let uncached = EhwService::new(ServiceConfig::new(1).seed(7).cache(false)).unwrap();
    assert!(uncached.cache().is_none());
    let reference: Vec<_> = uncached
        .run_batch(mixed_specs(&shared, &distinct))
        .expect("batch accepted")
        .iter()
        .map(fingerprint)
        .collect();

    let squeezed = EhwService::new(ServiceConfig::new(1).seed(7).cache_sizes(
        CrossJobCacheConfig {
            windows_capacity: 1,
            fitness_capacity: 4,
            champion_capacity: 1,
        },
    ))
    .unwrap();
    let got: Vec<_> = squeezed
        .run_batch(mixed_specs(&shared, &distinct))
        .expect("batch accepted")
        .iter()
        .map(fingerprint)
        .collect();
    assert_eq!(got, reference, "eviction pressure changed results");
    let stats = squeezed.stats();
    assert!(stats.cache.fitness_evictions > 0, "{:?}", stats.cache);
    assert!(
        squeezed.cache().expect("cache on").fitness_len() <= 4,
        "capacity bound violated"
    );
}

// ----------------------------------------------------------------------
// 3. Warm-start provenance
// ----------------------------------------------------------------------

#[test]
fn warm_start_seeds_from_the_champion_library_and_records_provenance() {
    let task = denoise_task(14, 0x5EED);
    let service = EhwService::new(ServiceConfig::new(1).seed(5)).unwrap();
    let warm_spec = |seed: u64| {
        JobSpec::evolution(task.input.clone(), task.reference.clone())
            .generations(5)
            .warm_start(true)
            .seed(seed)
            .build()
            .unwrap()
    };

    // First job under the key: the library is empty, so it runs cold — but
    // it records the key it looked under and deposits its champion.
    let first = service
        .submit(warm_spec(21))
        .unwrap()
        .wait()
        .expect("shard pool is alive");
    assert!(!first.warm_started);
    let key = first.warm_start_key.expect("opt-in records the key");
    let cache = service.cache().expect("cache on by default");
    assert!(cache.champion_len() >= 1);

    // Second job, same workload fingerprint: its starting parent *is* the
    // deposited champion, so its initial fitness equals the first job's
    // best fitness.
    let second = service
        .submit(warm_spec(22))
        .unwrap()
        .wait()
        .expect("shard pool is alive");
    assert!(second.warm_started);
    assert_eq!(second.warm_start_key, Some(key));
    let (first_evo, _) = first.as_evolution().expect("evolution job");
    let (second_evo, _) = second.as_evolution().expect("evolution job");
    assert_eq!(second_evo.initial_fitness, first_evo.best_fitness);
    // Elitist selection from a champion start can never end up worse.
    assert!(second_evo.best_fitness <= first_evo.best_fitness);

    // A job that never opted in carries no provenance.
    let cold = service
        .submit(
            JobSpec::evolution(task.input.clone(), task.reference.clone())
                .generations(5)
                .seed(23)
                .build()
                .unwrap(),
        )
        .unwrap()
        .wait()
        .expect("shard pool is alive");
    assert!(!cold.warm_started);
    assert!(cold.warm_start_key.is_none());
}

// ----------------------------------------------------------------------
// 4. Randomised transparency (proptest)
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn any_evolution_job_is_unchanged_by_the_cache(
        seed in any::<u64>(),
        arrays in 1usize..3,
        workers in prop_oneof![Just(1usize), Just(2), Just(8)],
    ) {
        let task = denoise_task(12, seed ^ 0xC0FFEE);
        let spec = || JobSpec::evolution(task.input.clone(), task.reference.clone())
            .num_arrays(arrays)
            .generations(4)
            .seed(seed)
            .build()
            .unwrap();
        let run = |cache: bool| {
            let service = EhwService::new(
                ServiceConfig::new(1)
                    .workers_per_platform(workers)
                    .seed(3)
                    .cache(cache),
            )
            .expect("valid config");
            // Twice, so the cache-on run replays its own first job.
            let results = service.run_batch(vec![spec(), spec()]).expect("accepted");
            results.iter().map(fingerprint).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(true), run(false));
    }
}
