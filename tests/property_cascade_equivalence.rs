//! Property suite pinning the compiled cascade engine to the naive oracle:
//! for random fitness arrangement × schedule × initialisation × seed — on
//! healthy and damaged platforms — a whole cascaded evolution run must be
//! byte-identical between `CascadeEngine::Naive` and `CascadeEngine::Compiled`
//! (stage genotypes, per-stage chain fitness and evaluation counts), and the
//! compiled engine must be independent of the worker count (1, 2 and 8).

use ehw_fabric::fault::FaultKind;
use ehw_image::noise::salt_pepper;
use ehw_image::synth;
use ehw_parallel::ParallelConfig;
use ehw_platform::evo_modes::{
    evolve_cascade, CascadeConfig, CascadeEngine, CascadeInit, CascadeResult, EvolutionTask,
};
use ehw_platform::modes::{CascadeFitness, CascadeSchedule};
use ehw_platform::platform::EhwPlatform;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_fitness() -> impl Strategy<Value = CascadeFitness> {
    prop_oneof![Just(CascadeFitness::Separate), Just(CascadeFitness::Merged)]
}

fn arb_schedule() -> impl Strategy<Value = CascadeSchedule> {
    prop_oneof![
        Just(CascadeSchedule::Sequential),
        Just(CascadeSchedule::Interleaved),
    ]
}

fn arb_init() -> impl Strategy<Value = CascadeInit> {
    prop_oneof![Just(CascadeInit::Identity), Just(CascadeInit::Random)]
}

fn denoise_task(size: usize, seed: u64) -> EvolutionTask {
    let clean = synth::shapes(size, size, 3);
    let mut rng = StdRng::seed_from_u64(seed);
    let noisy = salt_pepper(&clean, 0.3, &mut rng);
    EvolutionTask::new(noisy, clean)
}

/// Builds a three-stage platform, optionally with a permanent fault injected
/// into stage 1 so the compiled engine's plans must carry the fault overlay
/// exactly like the oracle's interpreter arrays do.
fn platform(workers: usize, faulty: bool) -> EhwPlatform {
    let mut p = EhwPlatform::with_parallel(3, ParallelConfig::with_workers(workers));
    if faulty {
        p.inject_pe_fault(1, 0, 3, FaultKind::Lpd);
    }
    p
}

fn run(
    config: &CascadeConfig,
    task: &EvolutionTask,
    workers: usize,
    faulty: bool,
) -> CascadeResult {
    let mut p = platform(workers, faulty);
    evolve_cascade(&mut p, task, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn compiled_cascade_equals_naive_oracle(
        seed in any::<u64>(),
        img_seed in 0u64..1_000,
        fitness in arb_fitness(),
        schedule in arb_schedule(),
        init in arb_init(),
        faulty in any::<bool>(),
    ) {
        let task = denoise_task(14, img_seed);
        let config = CascadeConfig {
            fitness,
            schedule,
            init,
            offspring: 5,
            ..CascadeConfig::paper(4, 2, seed)
        };
        let naive = run(
            &CascadeConfig { engine: CascadeEngine::Naive, ..config },
            &task,
            1,
            faulty,
        );
        let reference = run(&config, &task, 1, faulty);
        for workers in [1usize, 2, 8] {
            let compiled = run(&config, &task, workers, faulty);
            prop_assert_eq!(
                &compiled.stage_genotypes, &naive.stage_genotypes,
                "genotypes diverged at {} workers ({:?}/{:?})", workers, fitness, schedule
            );
            prop_assert_eq!(&compiled.stage_fitness, &naive.stage_fitness);
            prop_assert_eq!(compiled.evaluations, naive.evaluations);
            prop_assert_eq!(compiled.final_fitness(), naive.final_fitness());
            // The suffix-shared Merged path must not change the engine's
            // work accounting either: plans evaluated, memo hits and early
            // exits are worker-invariant.
            prop_assert_eq!(
                compiled.stats, reference.stats,
                "EngineStats diverged at {} workers ({:?}/{:?})", workers, fitness, schedule
            );
        }
    }

    #[test]
    fn compiled_cascade_configures_the_platform_like_the_oracle(
        seed in any::<u64>(),
        img_seed in 0u64..1_000,
        schedule in arb_schedule(),
    ) {
        // Beyond the returned result: the platform both engines leave behind
        // must hold the same circuits and report the same chain fitness.
        let task = denoise_task(12, img_seed);
        let config = CascadeConfig {
            schedule,
            offspring: 4,
            ..CascadeConfig::paper(3, 2, seed)
        };
        let mut naive_platform = platform(1, false);
        let _ = evolve_cascade(
            &mut naive_platform,
            &task,
            &CascadeConfig { engine: CascadeEngine::Naive, ..config },
        );
        let mut compiled_platform = platform(1, false);
        let _ = evolve_cascade(&mut compiled_platform, &task, &config);
        for i in 0..3 {
            prop_assert_eq!(
                naive_platform.acb(i).genotype(),
                compiled_platform.acb(i).genotype(),
                "stage {} circuit diverged", i
            );
        }
        prop_assert_eq!(
            naive_platform.chain_fitness(&task.input, &task.reference),
            compiled_platform.chain_fitness(&task.input, &task.reference)
        );
    }
}
