//! Property-based tests (proptest) on the cross-crate invariants the platform
//! relies on: genotype encoding, array purity, voter correctness, metric
//! properties, reconfiguration-plan consistency and scrubbing behaviour.

use ehw_array::array::ProcessingArray;
use ehw_array::genotype::{Genotype, ARRAY_COLS, ARRAY_ROWS, INPUT_GENES, PE_GENES};
use ehw_array::latency::ArrayLatency;
use ehw_array::pe::{FaultBehaviour, PeFunction};
use ehw_array::reconfig_map::reconfig_plan;
use ehw_fabric::fault::FaultKind;
use ehw_fabric::frame::{ConfigMemory, Frame, FrameAddress, FRAME_BYTES};
use ehw_fabric::scrub::Scrubber;
use ehw_image::image::GrayImage;
use ehw_image::metrics::{mae, max_abs_error, psnr};
use ehw_image::window::Window3x3;
use ehw_platform::voter::{FitnessVote, FitnessVoter, PixelVoter};
use proptest::prelude::*;

/// Strategy generating an arbitrary (always valid) genotype.
fn arb_genotype() -> impl Strategy<Value = Genotype> {
    (
        proptest::array::uniform16(0u8..16),
        proptest::array::uniform8(0u8..9),
        0u8..ARRAY_ROWS as u8,
    )
        .prop_map(|(pe_genes, input_genes, output_gene)| Genotype {
            pe_genes,
            input_genes,
            output_gene,
        })
}

/// Strategy generating a small grayscale image with arbitrary content.
fn arb_image() -> impl Strategy<Value = GrayImage> {
    (4usize..24, 4usize..24).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<u8>(), w * h)
            .prop_map(move |data| GrayImage::from_vec(w, h, data))
    })
}

/// Strategy generating a 3×3 window.
fn arb_window() -> impl Strategy<Value = Window3x3> {
    proptest::array::uniform9(any::<u8>()).prop_map(Window3x3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------------
    // Genotype properties
    // ------------------------------------------------------------------

    #[test]
    fn genotype_encode_decode_round_trips(g in arb_genotype()) {
        let decoded = Genotype::decode(&g.encode()).expect("decode");
        prop_assert_eq!(decoded, g);
    }

    #[test]
    fn mutation_respects_rate_bound(g in arb_genotype(), rate in 0usize..8, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let child = g.mutated(rate, &mut rng);
        prop_assert!(child.hamming_distance(&g) <= rate);
        prop_assert!(child.pe_reconfigurations_from(&g) <= rate);
        // Mutation always produces a valid genotype.
        prop_assert!(child.pe_genes.iter().all(|&x| x < 16));
        prop_assert!(child.input_genes.iter().all(|&x| x < 9));
        prop_assert!((child.output_gene as usize) < ARRAY_ROWS);
    }

    #[test]
    fn reconfig_plan_matches_hamming_structure(a in arb_genotype(), b in arb_genotype()) {
        let plan = reconfig_plan(0, &a, &b);
        prop_assert_eq!(plan.pe_count(), b.pe_reconfigurations_from(&a));
        prop_assert!(plan.pe_count() <= PE_GENES);
        prop_assert!(plan.register_writes <= INPUT_GENES + 1);
        // Applying the plan to `a` would produce exactly `b`'s PE genes.
        let mut patched = a.clone();
        for w in &plan.pe_writes {
            patched.pe_genes[w.row * ARRAY_COLS + w.col] = w.gene;
        }
        prop_assert_eq!(patched.pe_genes, b.pe_genes);
    }

    #[test]
    fn latency_is_bounded_and_monotone_in_output_row(g in arb_genotype()) {
        let latency = ArrayLatency::of(&g);
        prop_assert!(latency.pipeline_cycles >= ARRAY_COLS as u64);
        prop_assert!(latency.pipeline_cycles < (ARRAY_COLS + ARRAY_ROWS) as u64);
        let mut deeper = g.clone();
        deeper.output_gene = (ARRAY_ROWS - 1) as u8;
        prop_assert!(ArrayLatency::of(&deeper).total_cycles() >= latency.total_cycles());
    }

    // ------------------------------------------------------------------
    // Array behaviour
    // ------------------------------------------------------------------

    #[test]
    fn array_is_a_pure_function_of_genotype_and_window(g in arb_genotype(), w in arb_window()) {
        let array = ProcessingArray::new(g);
        prop_assert_eq!(array.evaluate_window(&w), array.evaluate_window(&w));
    }

    #[test]
    fn parallel_filtering_is_bit_exact(g in arb_genotype(), img in arb_image(), threads in 1usize..6) {
        let array = ProcessingArray::new(g);
        prop_assert_eq!(array.filter_image_parallel(&img, threads), array.filter_image(&img));
    }

    #[test]
    fn constant_windows_are_fixed_points_of_many_functions(v in any::<u8>()) {
        // For a uniform window every input mux yields `v`; pass-through,
        // min, max and average therefore return `v` as well.
        let w = Window3x3([v; 9]);
        for f in [PeFunction::IdentityW, PeFunction::IdentityN, PeFunction::Min, PeFunction::Max, PeFunction::Average] {
            prop_assert_eq!(f.apply(v, v), v);
        }
        prop_assert_eq!(w.median(), v);
        prop_assert_eq!(w.mean(), v);
    }

    #[test]
    fn faulty_array_stays_deterministic(g in arb_genotype(), img in arb_image()) {
        let mut array = ProcessingArray::new(g);
        array.inject_fault(0, ARRAY_COLS - 1, FaultBehaviour::dummy());
        prop_assert_eq!(array.filter_image(&img), array.filter_image(&img));
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    #[test]
    fn mae_is_a_metric(a in arb_image()) {
        prop_assert_eq!(mae(&a, &a), 0);
        prop_assert!(psnr(&a, &a).is_infinite());
    }

    #[test]
    fn mae_symmetry_and_bounds(data in proptest::collection::vec(any::<(u8, u8)>(), 16..256)) {
        let n = data.len();
        let a = GrayImage::from_vec(n, 1, data.iter().map(|p| p.0).collect());
        let b = GrayImage::from_vec(n, 1, data.iter().map(|p| p.1).collect());
        prop_assert_eq!(mae(&a, &b), mae(&b, &a));
        prop_assert!(mae(&a, &b) <= 255 * n as u64);
        prop_assert!(max_abs_error(&a, &b) as u64 <= 255);
        // The aggregated MAE is at least the worst single-pixel error.
        prop_assert!(mae(&a, &b) >= max_abs_error(&a, &b) as u64);
    }

    // ------------------------------------------------------------------
    // Voters
    // ------------------------------------------------------------------

    #[test]
    fn pixel_voter_majority_property(img in arb_image(), corruption in any::<u8>()) {
        // Whatever a single array does, two healthy copies outvote it.
        let corrupted = img.map(|p| p.wrapping_add(corruption));
        let result = PixelVoter.vote([&img, &corrupted, &img]);
        prop_assert_eq!(result.image, img.clone());
        prop_assert_eq!(result.outvoted[0], 0);
        prop_assert_eq!(result.outvoted[2], 0);
    }

    #[test]
    fn fitness_voter_never_blames_an_agreeing_pair(f in any::<[u64; 3]>(), threshold in 0u64..1000) {
        let voter = FitnessVoter::new(threshold);
        match voter.vote(f) {
            FitnessVote::Divergent { array } => {
                // The two remaining arrays must agree within the threshold.
                let others: Vec<u64> = (0..3).filter(|&i| i != array).map(|i| f[i]).collect();
                prop_assert!(others[0].abs_diff(others[1]) <= threshold);
            }
            FitnessVote::Agreement | FitnessVote::NoMajority => {}
        }
    }

    // ------------------------------------------------------------------
    // Configuration memory and scrubbing
    // ------------------------------------------------------------------

    #[test]
    fn scrubbing_always_repairs_seu_and_never_repairs_lpd(
        bit in 0usize..(FRAME_BYTES * 8),
        payload in proptest::collection::vec(any::<u8>(), 1..FRAME_BYTES),
        kind in prop_oneof![Just(FaultKind::Seu), Just(FaultKind::Lpd)],
    ) {
        let addr = FrameAddress::new(0, 0, 0);
        let golden = Frame::from_bytes(&payload);
        let mut mem = ConfigMemory::new();
        let mut scrubber = Scrubber::new();
        mem.write_frame(addr, golden.clone());
        scrubber.record_golden(addr, golden.clone());

        mem.inject_fault(addr, bit, kind);
        scrubber.scrub_frame(&mut mem, addr);
        let repaired = mem.observed(addr) == golden;
        match kind {
            FaultKind::Seu => prop_assert!(repaired),
            FaultKind::Lpd => prop_assert!(!repaired),
        }
    }
}
