//! Property suite pinning the compiled evaluation engine to the reference
//! interpreter: the plan must be bit-identical to the interpreter for random
//! genotype × fault-overlay × image triples, bounded fitness must equal
//! unbounded fitness whenever the bound is not hit, and a whole evolution run
//! must be byte-identical with the engine on or off, at any worker count.

use std::collections::BTreeMap;

use ehw_array::array::ProcessingArray;
use ehw_array::compiled::{interpret_filter_image, interpret_window, CompiledArray};
use ehw_array::genotype::{Genotype, ARRAY_COLS, ARRAY_ROWS};
use ehw_array::pe::FaultBehaviour;
use ehw_evolution::fitness::{plan_mae, plan_mae_bounded, SoftwareEvaluator};
use ehw_evolution::strategy::{run_evolution, EsConfig, EvalEngine, NullObserver};
use ehw_image::image::GrayImage;
use ehw_image::metrics::mae;
use ehw_image::window::{SharedWindows, Window3x3};
use ehw_parallel::ParallelConfig;
use proptest::prelude::*;

/// Strategy generating an arbitrary (always valid) genotype.
fn arb_genotype() -> impl Strategy<Value = Genotype> {
    (
        proptest::array::uniform16(0u8..16),
        proptest::array::uniform8(0u8..9),
        0u8..ARRAY_ROWS as u8,
    )
        .prop_map(|(pe_genes, input_genes, output_gene)| Genotype {
            pe_genes,
            input_genes,
            output_gene,
        })
}

/// Strategy generating one fault behaviour.
fn arb_fault() -> impl Strategy<Value = FaultBehaviour> {
    prop_oneof![
        any::<u64>().prop_map(|seed| FaultBehaviour::RandomOutput { seed }),
        any::<u8>().prop_map(|value| FaultBehaviour::StuckAt { value }),
        Just(FaultBehaviour::InvertedOutput),
    ]
}

/// Strategy generating a fault overlay of up to six damaged PEs.
fn arb_overlay() -> impl Strategy<Value = BTreeMap<(usize, usize), FaultBehaviour>> {
    proptest::collection::vec((0usize..ARRAY_ROWS, 0usize..ARRAY_COLS, arb_fault()), 0..6)
        .prop_map(|faults| faults.into_iter().map(|(r, c, b)| ((r, c), b)).collect())
}

/// Strategy generating a small grayscale image with arbitrary content.
fn arb_image() -> impl Strategy<Value = GrayImage> {
    (3usize..20, 3usize..20).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<u8>(), w * h)
            .prop_map(move |data| GrayImage::from_vec(w, h, data))
    })
}

fn compile(g: &Genotype, overlay: &BTreeMap<(usize, usize), FaultBehaviour>) -> CompiledArray {
    CompiledArray::with_faults(g, overlay.iter().map(|(&p, &b)| (p, b)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ------------------------------------------------------------------
    // Plan == interpreter
    // ------------------------------------------------------------------

    #[test]
    fn compiled_plan_matches_interpreter_per_window(
        g in arb_genotype(),
        overlay in arb_overlay(),
        window in proptest::array::uniform9(any::<u8>()).prop_map(Window3x3),
    ) {
        let plan = compile(&g, &overlay);
        prop_assert_eq!(plan.evaluate_window(&window), interpret_window(&g, &overlay, &window));
    }

    #[test]
    fn compiled_plan_matches_interpreter_per_image(
        g in arb_genotype(),
        overlay in arb_overlay(),
        img in arb_image(),
    ) {
        let plan = compile(&g, &overlay);
        prop_assert_eq!(plan.filter_image(&img), interpret_filter_image(&g, &overlay, &img));
    }

    #[test]
    fn processing_array_matches_interpreter(
        g in arb_genotype(),
        overlay in arb_overlay(),
        img in arb_image(),
    ) {
        // The array type itself (the thing every platform path goes through)
        // must agree with the interpreter too — it delegates to its plan.
        let mut array = ProcessingArray::new(g.clone());
        for (&(r, c), &b) in &overlay {
            array.inject_fault(r, c, b);
        }
        prop_assert_eq!(array.filter_image(&img), interpret_filter_image(&g, &overlay, &img));
    }

    #[test]
    fn block_evaluation_matches_scalar(
        g in arb_genotype(),
        overlay in arb_overlay(),
        img in arb_image(),
    ) {
        let plan = compile(&g, &overlay);
        let windows = SharedWindows::new(&img);
        let mut block = vec![0u8; windows.len()];
        plan.evaluate_windows_into(windows.as_slice(), &mut block);
        for (k, w) in windows.as_slice().iter().enumerate() {
            prop_assert_eq!(block[k], plan.evaluate_window(w));
        }
    }

    // ------------------------------------------------------------------
    // Bounded == unbounded fitness
    // ------------------------------------------------------------------

    #[test]
    fn plan_mae_matches_filter_then_mae(
        g in arb_genotype(),
        overlay in arb_overlay(),
        input in arb_image(),
    ) {
        let plan = compile(&g, &overlay);
        let windows = SharedWindows::new(&input);
        let reference = interpret_filter_image(&Genotype::identity(), &BTreeMap::new(), &input);
        prop_assert_eq!(
            plan_mae(&plan, &windows, &reference),
            mae(&plan.filter_image(&input), &reference)
        );
    }

    #[test]
    fn bounded_fitness_is_exact_iff_under_the_bound(
        g in arb_genotype(),
        overlay in arb_overlay(),
        input in arb_image(),
        bound in 0u64..5_000,
    ) {
        let plan = compile(&g, &overlay);
        let windows = SharedWindows::new(&input);
        let reference = GrayImage::new(input.width(), input.height(), 128);
        let exact = plan_mae(&plan, &windows, &reference);
        let (bounded, exited) = plan_mae_bounded(&plan, &windows, &reference, Some(bound));
        if exact <= bound {
            prop_assert_eq!(bounded, exact, "bound not hit: values must agree");
            prop_assert!(!exited);
        } else {
            prop_assert!(exited);
            prop_assert!(bounded > bound, "early exit must report above the bound");
            prop_assert!(bounded <= exact, "partial sum cannot exceed the exact MAE");
        }
    }

    // ------------------------------------------------------------------
    // Evolution: engine on == engine off, at any worker count
    // ------------------------------------------------------------------

    #[test]
    fn evolution_is_identical_with_engine_on_or_off(
        seed in any::<u64>(),
        img_seed in 0u64..1_000,
    ) {
        let clean = ehw_image::synth::shapes(16, 16, 3);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(img_seed);
        let noisy = ehw_image::noise::salt_pepper(&clean, 0.3, &mut rng);
        let run = |engine: EvalEngine, workers: usize| {
            let config = EsConfig {
                engine,
                parallel: ParallelConfig::with_workers(workers),
                ..EsConfig::paper(3, 1, 15, seed)
            };
            let mut eval = SoftwareEvaluator::new(noisy.clone(), clean.clone());
            run_evolution(&config, &mut eval, &mut NullObserver)
        };
        let reference = run(EvalEngine::Exhaustive, 1);
        for workers in [1usize, 2, 8] {
            let r = run(EvalEngine::Bounded, workers);
            prop_assert_eq!(r.best_genotype.encode(), reference.best_genotype.encode());
            prop_assert_eq!(r.best_fitness, reference.best_fitness);
            prop_assert_eq!(&r.history, &reference.history);
            prop_assert_eq!(r.evaluations, reference.evaluations);
            prop_assert_eq!(r.total_pe_reconfigurations, reference.total_pe_reconfigurations);
        }
    }
}
