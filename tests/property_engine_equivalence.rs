//! Property suite pinning the compiled evaluation engine to the reference
//! interpreter: the plan must be bit-identical to the interpreter for random
//! genotype × fault-overlay × image triples, bounded fitness must equal
//! unbounded fitness whenever the bound is not hit, and a whole evolution run
//! must be byte-identical with the engine on or off, at any worker count.

use std::collections::BTreeMap;

use ehw_array::array::ProcessingArray;
use ehw_array::compiled::{interpret_filter_image, interpret_window, CompiledArray};
use ehw_array::genotype::{Genotype, ARRAY_COLS, ARRAY_ROWS};
use ehw_array::pe::FaultBehaviour;
use ehw_evolution::fitness::{plan_mae, plan_mae_bounded, SoftwareEvaluator};
use ehw_evolution::strategy::{run_evolution, EsConfig, EvalEngine, NullObserver};
use ehw_image::image::GrayImage;
use ehw_image::metrics::mae;
use ehw_image::window::{SharedWindows, Window3x3};
use ehw_parallel::ParallelConfig;
use proptest::prelude::*;

/// Strategy generating an arbitrary (always valid) genotype.
fn arb_genotype() -> impl Strategy<Value = Genotype> {
    (
        proptest::array::uniform16(0u8..16),
        proptest::array::uniform8(0u8..9),
        0u8..ARRAY_ROWS as u8,
    )
        .prop_map(|(pe_genes, input_genes, output_gene)| Genotype {
            pe_genes,
            input_genes,
            output_gene,
        })
}

/// Strategy generating one fault behaviour.
fn arb_fault() -> impl Strategy<Value = FaultBehaviour> {
    prop_oneof![
        any::<u64>().prop_map(|seed| FaultBehaviour::RandomOutput { seed }),
        any::<u8>().prop_map(|value| FaultBehaviour::StuckAt { value }),
        Just(FaultBehaviour::InvertedOutput),
    ]
}

/// Strategy generating one overlay edit: inject a behaviour or clear.
fn arb_fault_edit() -> impl Strategy<Value = Option<FaultBehaviour>> {
    prop_oneof![Just(None), arb_fault().prop_map(Some)]
}

/// Strategy generating a fault overlay of up to six damaged PEs.
fn arb_overlay() -> impl Strategy<Value = BTreeMap<(usize, usize), FaultBehaviour>> {
    proptest::collection::vec((0usize..ARRAY_ROWS, 0usize..ARRAY_COLS, arb_fault()), 0..6)
        .prop_map(|faults| faults.into_iter().map(|(r, c, b)| ((r, c), b)).collect())
}

/// Strategy generating a small grayscale image with arbitrary content.
fn arb_image() -> impl Strategy<Value = GrayImage> {
    (3usize..20, 3usize..20).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<u8>(), w * h)
            .prop_map(move |data| GrayImage::from_vec(w, h, data))
    })
}

fn compile(g: &Genotype, overlay: &BTreeMap<(usize, usize), FaultBehaviour>) -> CompiledArray {
    CompiledArray::with_faults(g, overlay.iter().map(|(&p, &b)| (p, b)))
}

/// Writes one flat-ordered gene (PE genes, then input genes, then the output
/// gene), clamping the value into the gene's valid range.
fn set_flat_gene(g: &mut Genotype, index: usize, value: u8) {
    if index < 16 {
        g.pe_genes[index] = value % 16;
    } else if index < 24 {
        g.input_genes[index - 16] = value % 9;
    } else {
        g.output_gene = value % ARRAY_ROWS as u8;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ------------------------------------------------------------------
    // Plan == interpreter
    // ------------------------------------------------------------------

    #[test]
    fn compiled_plan_matches_interpreter_per_window(
        g in arb_genotype(),
        overlay in arb_overlay(),
        window in proptest::array::uniform9(any::<u8>()).prop_map(Window3x3),
    ) {
        let plan = compile(&g, &overlay);
        prop_assert_eq!(plan.evaluate_window(&window), interpret_window(&g, &overlay, &window));
    }

    #[test]
    fn compiled_plan_matches_interpreter_per_image(
        g in arb_genotype(),
        overlay in arb_overlay(),
        img in arb_image(),
    ) {
        let plan = compile(&g, &overlay);
        prop_assert_eq!(plan.filter_image(&img), interpret_filter_image(&g, &overlay, &img));
    }

    #[test]
    fn processing_array_matches_interpreter(
        g in arb_genotype(),
        overlay in arb_overlay(),
        img in arb_image(),
    ) {
        // The array type itself (the thing every platform path goes through)
        // must agree with the interpreter too — it delegates to its plan.
        let mut array = ProcessingArray::new(g.clone());
        for (&(r, c), &b) in &overlay {
            array.inject_fault(r, c, b);
        }
        prop_assert_eq!(array.filter_image(&img), interpret_filter_image(&g, &overlay, &img));
    }

    #[test]
    fn block_evaluation_matches_scalar(
        g in arb_genotype(),
        overlay in arb_overlay(),
        img in arb_image(),
    ) {
        let plan = compile(&g, &overlay);
        let windows = SharedWindows::new(&img);
        let mut block = vec![0u8; windows.len()];
        plan.evaluate_planes_into(windows.planes(), 0, &mut block);
        for (k, &lane) in block.iter().enumerate() {
            prop_assert_eq!(lane, plan.evaluate_window(&windows.window(k)));
        }
    }

    #[test]
    fn plane_layout_matches_aos_layout(
        g in arb_genotype(),
        overlay in arb_overlay(),
        img in arb_image(),
    ) {
        // The SoA plane path must be byte-identical to the AoS gather path —
        // same plan, same windows, only the memory layout differs.
        let plan = compile(&g, &overlay);
        let windows = SharedWindows::new(&img);
        let aos: Vec<Window3x3> = (0..windows.len()).map(|k| windows.window(k)).collect();
        let mut from_aos = vec![0u8; aos.len()];
        plan.evaluate_windows_into(&aos, &mut from_aos);
        let mut from_planes = vec![0u8; aos.len()];
        plan.evaluate_planes_into(windows.planes(), 0, &mut from_planes);
        prop_assert_eq!(from_aos, from_planes);
    }

    // ------------------------------------------------------------------
    // Patched plans == fresh compiles
    // ------------------------------------------------------------------

    #[test]
    fn patched_plan_matches_fresh_compile(
        parent in arb_genotype(),
        edits in proptest::collection::vec((0usize..25, any::<u8>()), 0..6),
        overlay in arb_overlay(),
    ) {
        // Re-deriving a child's plan from the parent's by rewriting only the
        // mutated genes must be byte-identical to compiling the child from
        // scratch under the same fault overlay.
        let mut child = parent.clone();
        for &(index, value) in &edits {
            set_flat_gene(&mut child, index, value);
        }
        let parent_plan = compile(&parent, &overlay);
        let patched = parent_plan.patch(&child.diff_from(&parent));
        prop_assert_eq!(patched, compile(&child, &overlay));
    }

    #[test]
    fn fault_patched_plan_matches_fresh_compile(
        g in arb_genotype(),
        overlay in arb_overlay(),
        edits in proptest::collection::vec(
            (0usize..ARRAY_ROWS, 0usize..ARRAY_COLS, arb_fault_edit()),
            0..6,
        ),
    ) {
        // Overlay edits patched one position at a time must track a fresh
        // compile against the accumulated overlay.
        let mut map = overlay.clone();
        let mut plan = compile(&g, &overlay);
        for (row, col, behaviour) in edits {
            match behaviour {
                Some(b) => {
                    map.insert((row, col), b);
                }
                None => {
                    map.remove(&(row, col));
                }
            }
            plan = plan.patch_fault(row, col, behaviour);
            prop_assert_eq!(plan, compile(&g, &map));
        }
    }

    // ------------------------------------------------------------------
    // Bounded == unbounded fitness
    // ------------------------------------------------------------------

    #[test]
    fn plan_mae_matches_filter_then_mae(
        g in arb_genotype(),
        overlay in arb_overlay(),
        input in arb_image(),
    ) {
        let plan = compile(&g, &overlay);
        let windows = SharedWindows::new(&input);
        let reference = interpret_filter_image(&Genotype::identity(), &BTreeMap::new(), &input);
        prop_assert_eq!(
            plan_mae(&plan, &windows, &reference),
            mae(&plan.filter_image(&input), &reference)
        );
    }

    #[test]
    fn bounded_fitness_is_exact_iff_under_the_bound(
        g in arb_genotype(),
        overlay in arb_overlay(),
        input in arb_image(),
        bound in 0u64..5_000,
    ) {
        let plan = compile(&g, &overlay);
        let windows = SharedWindows::new(&input);
        let reference = GrayImage::new(input.width(), input.height(), 128);
        let exact = plan_mae(&plan, &windows, &reference);
        let (bounded, exited) = plan_mae_bounded(&plan, &windows, &reference, Some(bound));
        if exact <= bound {
            prop_assert_eq!(bounded, exact, "bound not hit: values must agree");
            prop_assert!(!exited);
        } else {
            prop_assert!(exited);
            prop_assert!(bounded > bound, "early exit must report above the bound");
            prop_assert!(bounded <= exact, "partial sum cannot exceed the exact MAE");
        }
    }

    // ------------------------------------------------------------------
    // Evolution: engine on == engine off, at any worker count
    // ------------------------------------------------------------------

    #[test]
    fn evolution_is_identical_with_engine_on_or_off(
        seed in any::<u64>(),
        img_seed in 0u64..1_000,
    ) {
        let clean = ehw_image::synth::shapes(16, 16, 3);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(img_seed);
        let noisy = ehw_image::noise::salt_pepper(&clean, 0.3, &mut rng);
        let run = |engine: EvalEngine, workers: usize| {
            let config = EsConfig {
                engine,
                parallel: ParallelConfig::with_workers(workers),
                ..EsConfig::paper(3, 1, 15, seed)
            };
            let mut eval = SoftwareEvaluator::new(noisy.clone(), clean.clone());
            run_evolution(&config, &mut eval, &mut NullObserver)
        };
        let reference = run(EvalEngine::Exhaustive, 1);
        for workers in [1usize, 2, 8] {
            let r = run(EvalEngine::Bounded, workers);
            prop_assert_eq!(r.best_genotype.encode(), reference.best_genotype.encode());
            prop_assert_eq!(r.best_fitness, reference.best_fitness);
            prop_assert_eq!(&r.history, &reference.history);
            prop_assert_eq!(r.evaluations, reference.evaluations);
            prop_assert_eq!(r.total_pe_reconfigurations, reference.total_pe_reconfigurations);
        }
    }
}
