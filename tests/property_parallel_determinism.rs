//! Cross-thread determinism suite: the parallel execution layer is
//! *scheduling only*.
//!
//! Every property here drives the same seeded workload through 1, 2 and 8
//! workers and asserts byte-identical results: the same best genotype, the
//! same fitness trajectory, the same fault-campaign report.  This is the
//! contract that makes `EHW_WORKERS` safe to sweep in benches and CI — worker
//! count changes wall-clock time, never results.

use ehw_array::genotype::Genotype;
use ehw_evolution::fitness::{FitnessEvaluator, SoftwareEvaluator};
use ehw_evolution::strategy::{run_evolution, EsConfig, MutationStrategy, NullObserver};
use ehw_image::noise::salt_pepper;
use ehw_image::synth;
use ehw_parallel::{ordered_map, ParallelConfig};
use ehw_platform::evo_modes::{evolve_parallel, EvolutionTask};
use ehw_platform::fault_campaign::systematic_fault_campaign_with;
use ehw_platform::platform::EhwPlatform;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn denoise_task(size: usize, seed: u64) -> EvolutionTask {
    let clean = synth::shapes(size, size, 3);
    let mut rng = StdRng::seed_from_u64(seed);
    let noisy = salt_pepper(&clean, 0.3, &mut rng);
    EvolutionTask::new(noisy, clean)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // ------------------------------------------------------------------
    // EvolutionStrategy: serial == parallel at 1, 2 and 8 workers
    // ------------------------------------------------------------------

    #[test]
    fn evolution_strategy_is_worker_count_invariant(
        seed in any::<u64>(),
        mutation_rate in 1usize..5,
        two_level in any::<bool>(),
    ) {
        let task = denoise_task(16, seed ^ 0xA5A5);
        let runs: Vec<_> = WORKER_COUNTS
            .iter()
            .map(|&workers| {
                let mut config = EsConfig::paper(mutation_rate, 3, 12, seed);
                config.parallel = ParallelConfig::with_workers(workers);
                if two_level {
                    config.strategy = MutationStrategy::two_level();
                }
                let mut evaluator =
                    SoftwareEvaluator::new(task.input.clone(), task.reference.clone());
                run_evolution(&config, &mut evaluator, &mut NullObserver)
            })
            .collect();
        for r in &runs[1..] {
            prop_assert_eq!(r.best_genotype.encode(), runs[0].best_genotype.encode());
            prop_assert_eq!(r.best_fitness, runs[0].best_fitness);
            prop_assert_eq!(&r.history, &runs[0].history);
            prop_assert_eq!(r.total_pe_reconfigurations, runs[0].total_pe_reconfigurations);
            prop_assert_eq!(r.evaluations, runs[0].evaluations);
        }
    }

    #[test]
    fn platform_evolution_is_worker_count_invariant(seed in any::<u64>()) {
        let task = denoise_task(16, seed ^ 0x3C3C);
        let results: Vec<_> = WORKER_COUNTS
            .iter()
            .map(|&workers| {
                let mut platform =
                    EhwPlatform::with_parallel(3, ParallelConfig::with_workers(workers));
                let config = EsConfig::paper(2, 3, 10, seed);
                let (result, _time) = evolve_parallel(&mut platform, &task, &config);
                (result, platform.acb(0).genotype().encode())
            })
            .collect();
        for (result, configured) in &results[1..] {
            prop_assert_eq!(
                result.best_genotype.encode(),
                results[0].0.best_genotype.encode()
            );
            prop_assert_eq!(&result.history, &results[0].0.history);
            prop_assert_eq!(configured, &results[0].1);
        }
    }

    // ------------------------------------------------------------------
    // FaultCampaign: serial == parallel at 1, 2 and 8 workers
    // ------------------------------------------------------------------

    #[test]
    fn fault_campaign_is_worker_count_invariant(seed in any::<u64>()) {
        let task = denoise_task(12, seed ^ 0x7E7E);
        let baseline = {
            let mut rng = StdRng::seed_from_u64(seed);
            Genotype::random(&mut rng)
        };
        let recovery = EsConfig::paper(1, 1, 2, seed ^ 1);
        let reports: Vec<_> = WORKER_COUNTS
            .iter()
            .map(|&workers| {
                let mut platform = EhwPlatform::new(2);
                systematic_fault_campaign_with(
                    &mut platform,
                    &baseline,
                    &task,
                    &recovery,
                    &[0, 1],
                    ParallelConfig::with_workers(workers),
                )
            })
            .collect();
        for report in &reports[1..] {
            prop_assert_eq!(&report.positions, &reports[0].positions);
        }
        prop_assert_eq!(reports[0].len(), 32);
    }

    // ------------------------------------------------------------------
    // The pool primitive itself, over adversarial chunk sizes
    // ------------------------------------------------------------------

    #[test]
    fn ordered_map_is_schedule_invariant(
        items in proptest::collection::vec(any::<u64>(), 0..80),
        workers in 1usize..9,
        chunk in 0usize..10,
    ) {
        let serial = ordered_map(ParallelConfig::serial(), &items, |i, &x| {
            x.wrapping_mul(31).wrapping_add(i as u64)
        });
        let parallel = ordered_map(ParallelConfig { workers, chunk }, &items, |i, &x| {
            x.wrapping_mul(31).wrapping_add(i as u64)
        });
        prop_assert_eq!(serial, parallel);
    }
}

// ----------------------------------------------------------------------
// Deterministic spot checks (non-property, fixed seeds)
// ----------------------------------------------------------------------

#[test]
fn evaluate_batch_with_matches_sequential_evaluation() {
    let task = denoise_task(24, 99);
    let mut rng = StdRng::seed_from_u64(5);
    let batch: Vec<Genotype> = (0..9).map(|_| Genotype::random(&mut rng)).collect();

    let mut eval = SoftwareEvaluator::new(task.input.clone(), task.reference.clone());
    let sequential: Vec<u64> = batch.iter().map(|g| eval.evaluate(g)).collect();
    for workers in WORKER_COUNTS {
        let mut eval = SoftwareEvaluator::new(task.input.clone(), task.reference.clone());
        let parallel = eval.evaluate_batch_with(&batch, ParallelConfig::with_workers(workers));
        assert_eq!(parallel, sequential, "diverged at {workers} workers");
    }
}

#[test]
fn processing_modes_are_worker_count_invariant() {
    let img = synth::shapes(32, 32, 4);
    let mut rng = StdRng::seed_from_u64(17);
    let genotypes: Vec<Genotype> = (0..3).map(|_| Genotype::random(&mut rng)).collect();

    let outputs: Vec<_> = WORKER_COUNTS
        .iter()
        .map(|&workers| {
            let mut platform = EhwPlatform::with_parallel(3, ParallelConfig::with_workers(workers));
            for (i, g) in genotypes.iter().enumerate() {
                platform.configure_array(i, g);
            }
            (
                platform.process_parallel(&img),
                platform.process_independent(&[img.clone(), img.clone(), img.clone()]),
            )
        })
        .collect();
    for out in &outputs[1..] {
        assert_eq!(out.0, outputs[0].0);
        assert_eq!(out.1, outputs[0].1);
    }
}
