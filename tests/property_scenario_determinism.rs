//! Scenario-layer determinism suite: fault injection is *data*, and that
//! data replays byte-identically.
//!
//! A [`FaultScenario`] compiles into an injection schedule that is a pure
//! function of `(scenario, arrays, seed)` — no wall clock, no thread
//! interleaving, no global state.  These properties pin the two halves of
//! that contract: the schedule itself is reproducible across compiles, and
//! the campaign a schedule drives is byte-identical at 1, 2 and 8 workers
//! for every scenario kind crossed with every recovery-policy ladder.  The
//! legacy single-PE sweep is also pinned as exactly `SingleSweep` under the
//! default policy, so PR-era call sites and the scenario layer can never
//! drift apart silently.

use ehw_array::genotype::Genotype;
use ehw_evolution::fitness::EngineStats;
use ehw_evolution::strategy::EsConfig;
use ehw_image::noise::salt_pepper;
use ehw_image::synth;
use ehw_parallel::ParallelConfig;
use ehw_platform::evo_modes::EvolutionTask;
use ehw_platform::fault_campaign::{
    scenario_fault_campaign_with, systematic_fault_campaign_with, CampaignReport,
};
use ehw_platform::platform::EhwPlatform;
use ehw_platform::scenario::{FaultScenario, ResilienceReport, ScenarioKind, ScenarioRegistry};
use ehw_platform::self_healing::RecoveryPolicy;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn denoise_task(size: usize, seed: u64) -> EvolutionTask {
    let clean = synth::shapes(size, size, 3);
    let mut rng = StdRng::seed_from_u64(seed);
    let noisy = salt_pepper(&clean, 0.3, &mut rng);
    EvolutionTask::new(noisy, clean)
}

fn run_campaign(
    scenario: &FaultScenario,
    policy: &RecoveryPolicy,
    seed: u64,
    workers: usize,
) -> CampaignReport {
    let task = denoise_task(12, seed ^ 0x5EED);
    let baseline = {
        let mut rng = StdRng::seed_from_u64(seed);
        Genotype::random(&mut rng)
    };
    let recovery = EsConfig::paper(1, 1, 2, seed);
    let mut platform = EhwPlatform::new(2);
    scenario_fault_campaign_with(
        &mut platform,
        &baseline,
        &task,
        &recovery,
        &[0, 1],
        scenario,
        policy,
        ParallelConfig::with_workers(workers),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // ------------------------------------------------------------------
    // Schedules are pure functions of (scenario, arrays, seed)
    // ------------------------------------------------------------------

    #[test]
    fn schedules_compile_byte_identically_for_every_builtin_kind(seed in any::<u64>()) {
        for scenario in ScenarioRegistry::builtin().scenarios() {
            let first = scenario.compile(&[0, 1], seed);
            let second = scenario.compile(&[0, 1], seed);
            prop_assert_eq!(&first, &second, "kind {} recompiled differently", scenario.kind.tag());
        }
    }

    #[test]
    fn distinct_seeds_decorrelate_probabilistic_schedules(seed in any::<u64>()) {
        let scenario = FaultScenario::new("burst", ScenarioKind::Burst { rate: 0.5, width: 8 });
        let a = scenario.compile(&[0], seed);
        let b = scenario.compile(&[0], seed ^ 0xFFFF_0000);
        // Equality would mean the seed never reached the RNG stream; with 8
        // probabilistic ticks over 16 positions a collision is astronomically
        // unlikely, so treat it as a wiring bug.
        prop_assert_ne!(a, b);
    }

    // ------------------------------------------------------------------
    // Campaigns: scenario kinds x policy ladders, 1 == 2 == 8 workers
    // ------------------------------------------------------------------

    #[test]
    fn scenario_campaigns_are_worker_count_invariant_across_kinds_and_ladders(
        seed in any::<u64>(),
        scenario_index in 0usize..4,
        policy_index in 0usize..3,
    ) {
        // Four representative kinds (one per injection style: sweep,
        // simultaneous multi-PE, correlated geometry, probabilistic burst)
        // crossed with all three builtin ladders.
        let registry = ScenarioRegistry::builtin();
        let scenario = ["single_sweep", "multi_pe_2", "correlated_row", "burst"]
            [scenario_index];
        let scenario = registry.scenario(scenario).unwrap();
        let (_, policy) = &registry.policies()[policy_index];

        let reports: Vec<CampaignReport> = WORKER_COUNTS
            .iter()
            .map(|&workers| run_campaign(scenario, policy, seed, workers))
            .collect();
        for report in &reports[1..] {
            prop_assert_eq!(report, &reports[0]);
        }

        // Folding into a resilience report is equally deterministic.
        let folded: Vec<ResilienceReport> = reports
            .iter()
            .map(|report| {
                let mut resilience = ResilienceReport::default();
                resilience.push_campaign(report);
                resilience
            })
            .collect();
        for fold in &folded[1..] {
            prop_assert_eq!(&fold.entries, &folded[0].entries);
        }
        prop_assert_eq!(&folded[0].entries[0].scenario, &scenario.name);
    }

    // ------------------------------------------------------------------
    // Legacy pinning: the historical sweep IS SingleSweep + default ladder
    // ------------------------------------------------------------------

    #[test]
    fn legacy_campaign_equals_single_sweep_under_the_default_policy(seed in any::<u64>()) {
        let task = denoise_task(12, seed ^ 0x5EED);
        let baseline = {
            let mut rng = StdRng::seed_from_u64(seed);
            Genotype::random(&mut rng)
        };
        let recovery = EsConfig::paper(1, 1, 2, seed);

        let legacy = {
            let mut platform = EhwPlatform::new(2);
            systematic_fault_campaign_with(
                &mut platform,
                &baseline,
                &task,
                &recovery,
                &[0, 1],
                ParallelConfig::with_workers(2),
            )
        };
        let scenario = run_campaign(
            &FaultScenario::single_sweep(),
            &RecoveryPolicy::default_ladder(),
            seed,
            2,
        );
        prop_assert_eq!(&legacy, &scenario);
        prop_assert_eq!(legacy.len(), 32);
    }
}

// ----------------------------------------------------------------------
// Deterministic spot checks (non-property, fixed seeds)
// ----------------------------------------------------------------------

/// Regression pin for the per-position recovery statistics gap: every
/// position that actually re-evolved must carry non-zero [`EngineStats`]
/// (the sweep once reported them as all-zero because the evaluator's
/// counters were never read back per position).
#[test]
fn recovered_positions_carry_nonzero_engine_stats() {
    let report = run_campaign(
        &FaultScenario::single_sweep(),
        &RecoveryPolicy::default_ladder(),
        0xC0FFEE,
        2,
    );
    let evolved: Vec<_> = report
        .positions
        .iter()
        .filter(|p| p.evaluations > 2)
        .collect();
    assert!(
        !evolved.is_empty(),
        "campaign never re-evolved; the regression check is vacuous"
    );
    for position in evolved {
        assert_ne!(
            position.stats,
            EngineStats::default(),
            "re-evolved position ({}, {}, {}) reported zero engine stats",
            position.array,
            position.row,
            position.col
        );
    }
}

/// All seven builtin scenario kinds produce non-empty schedules over two
/// arrays, and the deterministic kinds produce the geometry they promise.
#[test]
fn builtin_scenarios_cover_every_kind_with_nonempty_schedules() {
    let registry = ScenarioRegistry::builtin();
    let mut tags: Vec<&str> = registry.scenarios().iter().map(|s| s.kind.tag()).collect();
    tags.sort_unstable();
    tags.dedup();
    assert_eq!(
        tags,
        [
            "burst",
            "correlated",
            "multi_pe",
            "permanent_lpd",
            "rate_sweep",
            "single_sweep",
            "storm"
        ],
        "builtin registry no longer covers every scenario kind"
    );
    for scenario in registry.scenarios() {
        let schedule = scenario.compile(&[0, 1], 7);
        assert!(
            !schedule.is_empty(),
            "builtin scenario '{}' compiled to an empty schedule",
            scenario.name
        );
    }
}
