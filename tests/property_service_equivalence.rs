//! Service-layer equivalence and determinism suite.
//!
//! The `ehw-service` front-end is *routing only*: a job's outcome is a pure
//! function of its spec and its effective seed, never of how the pool is
//! sized or scheduled.  Three families of properties pin that down:
//!
//! 1. **Legacy equivalence** — every [`JobSpec`] kind, run through an
//!    [`EhwService`], returns byte-identical results to the legacy entry
//!    point (`evolve_parallel`, `evolve_cascade`,
//!    `systematic_fault_campaign`) with the same seed, at any worker or
//!    platform count.
//! 2. **Pool invariance** — a mixed-kind batch produces byte-identical
//!    results at 1/2/8 workers × 1/2 platforms, and derived (unpinned) seeds
//!    follow the service root sequence reproducibly.
//! 3. **Backpressure** — a full queue blocks `submit` instead of dropping:
//!    every submitted job resolves, and a submitter against a saturated
//!    queue provably waits until a shard frees capacity.

use ehw_evolution::strategy::EsConfig;
use ehw_image::noise::salt_pepper;
use ehw_image::synth;
use ehw_parallel::ParallelConfig;
use ehw_platform::evo_modes::{evolve_cascade, evolve_parallel, CascadeConfig, EvolutionTask};
use ehw_platform::fault_campaign::systematic_fault_campaign;
use ehw_platform::modes::{CascadeFitness, CascadeSchedule};
use ehw_platform::platform::EhwPlatform;
use ehw_service::{EhwService, JobResult, JobSpec, ServiceConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{SeedSequence, SeedableRng};

fn denoise_task(size: usize, seed: u64) -> EvolutionTask {
    let clean = synth::shapes(size, size, 3);
    let mut rng = StdRng::seed_from_u64(seed);
    let noisy = salt_pepper(&clean, 0.3, &mut rng);
    EvolutionTask::new(noisy, clean)
}

/// Everything observable about a job result, in comparable form.
fn fingerprint(result: &JobResult) -> (u64, u64, Vec<Vec<u8>>, Vec<u64>) {
    (
        result.seed,
        result.evaluations,
        result.genotypes().iter().map(|g| g.encode()).collect(),
        result.history().to_vec(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // ------------------------------------------------------------------
    // 1. Legacy equivalence, per job kind
    // ------------------------------------------------------------------

    #[test]
    fn evolution_jobs_match_evolve_parallel(
        seed in any::<u64>(),
        mutation_rate in 1usize..4,
        arrays in 1usize..4,
        workers in prop_oneof![Just(1usize), Just(2), Just(8)],
    ) {
        let task = denoise_task(16, seed ^ 0x51);
        let spec = JobSpec::evolution(task.input.clone(), task.reference.clone())
            .num_arrays(arrays)
            .mutation_rate(mutation_rate)
            .generations(6)
            .seed(seed)
            .build()
            .expect("valid spec");
        let service = EhwService::new(
            ServiceConfig::new(1).workers_per_platform(workers),
        ).expect("valid config");
        let job = service.submit(spec).expect("accepted").wait().expect("shard pool is alive");
        let (got, got_time) = job.as_evolution().expect("evolution job");

        let mut platform =
            EhwPlatform::with_parallel(arrays, ParallelConfig::serial());
        let config = EsConfig::paper(mutation_rate, arrays, 6, seed);
        let (want, want_time) = evolve_parallel(&mut platform, &task, &config);

        prop_assert_eq!(got.best_genotype.encode(), want.best_genotype.encode());
        prop_assert_eq!(got.best_fitness, want.best_fitness);
        prop_assert_eq!(got.initial_fitness, want.initial_fitness);
        prop_assert_eq!(&got.history, &want.history);
        prop_assert_eq!(got.evaluations, want.evaluations);
        prop_assert_eq!(got.total_pe_reconfigurations, want.total_pe_reconfigurations);
        prop_assert_eq!(got_time.total_s, want_time.total_s);
        prop_assert_eq!(got_time.reconfiguration_s, want_time.reconfiguration_s);
        prop_assert_eq!(job.evaluations, want.evaluations);
    }

    #[test]
    fn cascade_jobs_match_evolve_cascade(
        seed in any::<u64>(),
        merged in any::<bool>(),
        interleaved in any::<bool>(),
        workers in prop_oneof![Just(1usize), Just(2), Just(8)],
    ) {
        let task = denoise_task(14, seed ^ 0x52);
        let fitness = if merged { CascadeFitness::Merged } else { CascadeFitness::Separate };
        let schedule = if interleaved { CascadeSchedule::Interleaved } else { CascadeSchedule::Sequential };
        let spec = JobSpec::cascade(task.input.clone(), task.reference.clone())
            .stages(2)
            .generations(4)
            .mutation_rate(2)
            .fitness(fitness)
            .schedule(schedule)
            .seed(seed)
            .build()
            .expect("valid spec");
        let service = EhwService::new(
            ServiceConfig::new(1).workers_per_platform(workers),
        ).expect("valid config");
        let job = service.submit(spec).expect("accepted").wait().expect("shard pool is alive");
        let got = job.as_cascade().expect("cascade job");

        let mut platform = EhwPlatform::with_parallel(2, ParallelConfig::serial());
        let config = CascadeConfig {
            fitness,
            schedule,
            ..CascadeConfig::paper(4, 2, seed)
        };
        let want = evolve_cascade(&mut platform, &task, &config);

        prop_assert_eq!(&got.stage_genotypes, &want.stage_genotypes);
        prop_assert_eq!(&got.stage_fitness, &want.stage_fitness);
        prop_assert_eq!(got.evaluations, want.evaluations);
        prop_assert_eq!(got.stats, want.stats);
        prop_assert_eq!(job.evaluations, want.evaluations);
    }

    #[test]
    fn campaign_jobs_match_systematic_fault_campaign(
        seed in any::<u64>(),
        workers in prop_oneof![Just(1usize), Just(2), Just(8)],
    ) {
        let task = denoise_task(12, seed ^ 0x53);
        let spec = JobSpec::fault_campaign(task.input.clone(), task.reference.clone())
            .recovery_generations(2)
            .recovery_mutation_rate(1)
            .seed(seed)
            .build()
            .expect("valid spec");
        let service = EhwService::new(
            ServiceConfig::new(1).workers_per_platform(workers),
        ).expect("valid config");
        let job = service.submit(spec).expect("accepted").wait().expect("shard pool is alive");
        let got = job.as_campaign().expect("campaign job");

        let mut platform = EhwPlatform::with_parallel(1, ParallelConfig::serial());
        let recovery = EsConfig::paper(1, 1, 2, seed);
        let baseline = ehw_array::genotype::Genotype::identity();
        let want = systematic_fault_campaign(&mut platform, &baseline, &task, &recovery, &[0]);

        prop_assert_eq!(&got.positions, &want.positions);
        prop_assert_eq!(job.evaluations, want.total_evaluations());
    }
}

// ----------------------------------------------------------------------
// 2. Pool invariance and seed derivation
// ----------------------------------------------------------------------

fn mixed_specs(task: &EvolutionTask) -> Vec<JobSpec> {
    // Two of each kind; the first of each pair pins its seed, the second
    // derives it from the service root — both must reproduce.
    vec![
        JobSpec::evolution(task.input.clone(), task.reference.clone())
            .generations(5)
            .seed(11)
            .build()
            .unwrap(),
        JobSpec::evolution(task.input.clone(), task.reference.clone())
            .num_arrays(2)
            .generations(5)
            .build()
            .unwrap(),
        JobSpec::cascade(task.input.clone(), task.reference.clone())
            .stages(2)
            .generations(3)
            .seed(13)
            .build()
            .unwrap(),
        JobSpec::cascade(task.input.clone(), task.reference.clone())
            .stages(3)
            .generations(3)
            .schedule(CascadeSchedule::Interleaved)
            .build()
            .unwrap(),
        JobSpec::fault_campaign(task.input.clone(), task.reference.clone())
            .recovery_generations(2)
            .seed(17)
            .build()
            .unwrap(),
        JobSpec::fault_campaign(task.input.clone(), task.reference.clone())
            .recovery_generations(2)
            .build()
            .unwrap(),
    ]
}

#[test]
fn mixed_batches_are_byte_identical_across_worker_and_platform_configs() {
    let task = denoise_task(14, 0xBEEF);
    let run = |platforms: usize, workers: usize| {
        let service = EhwService::new(
            ServiceConfig::new(platforms)
                .workers_per_platform(workers)
                .seed(2013),
        )
        .expect("valid config");
        let results = service
            .run_batch(mixed_specs(&task))
            .expect("batch accepted");
        results.iter().map(fingerprint).collect::<Vec<_>>()
    };

    let reference = run(1, 1);
    for &(platforms, workers) in &[(1usize, 2usize), (1, 8), (2, 1), (2, 2), (2, 8)] {
        let got = run(platforms, workers);
        assert_eq!(
            got, reference,
            "diverged at {platforms} platforms x {workers} workers"
        );
    }
}

#[test]
fn derived_seeds_follow_the_root_and_reproduce_the_legacy_path() {
    let task = denoise_task(16, 0xCAFE);
    let service = EhwService::new(ServiceConfig::new(2).seed(777)).expect("valid config");
    // Job 0 unpinned, job 1 unpinned: seeds must be root.fork(0), root.fork(1).
    let spec = |gens: usize| {
        JobSpec::evolution(task.input.clone(), task.reference.clone())
            .generations(gens)
            .build()
            .unwrap()
    };
    let h0 = service.submit(spec(5)).expect("accepted");
    let h1 = service.submit(spec(5)).expect("accepted");
    let root = SeedSequence::new(777);
    assert_eq!(h0.seed(), root.fork(0).seed());
    assert_eq!(h1.seed(), root.fork(1).seed());
    let r0 = h0.wait().expect("shard pool is alive");

    // Re-running the legacy entry point with the derived seed reproduces the
    // job byte for byte — the migration story for existing callers.
    let mut platform = EhwPlatform::with_parallel(1, ParallelConfig::serial());
    let config = EsConfig::paper(3, 1, 5, r0.seed);
    let (want, _) = evolve_parallel(&mut platform, &task, &config);
    let (got, _) = r0.as_evolution().expect("evolution job");
    assert_eq!(got.best_genotype.encode(), want.best_genotype.encode());
    assert_eq!(got.history, want.history);
    let _ = h1.wait().expect("shard pool is alive");
}

// ----------------------------------------------------------------------
// 3. Queue saturation: backpressure blocks, nothing is dropped
// ----------------------------------------------------------------------

#[test]
fn queue_saturation_blocks_submitters_and_drops_nothing() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    // Large enough that a job takes milliseconds even in release builds, so
    // the polling loop below reliably observes the throttled window.
    let task = denoise_task(32, 0xD00D);
    // One shard, queue depth 1: while the shard chews on a job, at most one
    // more fits in the queue; further submissions must block.
    let service =
        Arc::new(EhwService::new(ServiceConfig::new(1).queue_depth(1)).expect("valid config"));
    let spec = |seed: u64| {
        JobSpec::evolution(task.input.clone(), task.reference.clone())
            .generations(80)
            .seed(seed)
            .build()
            .unwrap()
    };

    const JOBS: usize = 8;
    let submitted = Arc::new(AtomicUsize::new(0));
    let submitter = {
        let service = Arc::clone(&service);
        let submitted = Arc::clone(&submitted);
        let specs: Vec<JobSpec> = (0..JOBS as u64).map(spec).collect();
        std::thread::spawn(move || {
            let mut handles = Vec::new();
            for spec in specs {
                handles.push(service.submit(spec).expect("accepted"));
                submitted.fetch_add(1, Ordering::SeqCst);
            }
            handles
        })
    };

    // The submitter can get at most `queue_depth + platforms` jobs in before
    // it has to wait for the single shard to finish one — poll and assert it
    // is throttled well below the full batch.  The count is checked *before*
    // each sleep so a fast host cannot drain the whole batch inside the
    // first poll interval unobserved.
    let mut throttled = false;
    for _ in 0..2000 {
        let n = submitted.load(Ordering::SeqCst);
        if n > 0 && n < JOBS && !submitter.is_finished() {
            throttled = true;
            break;
        }
        if submitter.is_finished() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let handles = submitter.join().expect("submitter survives");
    assert!(
        throttled,
        "the submitter was never observed blocking on the full queue"
    );

    // Nothing was dropped: all handles resolve, in submission order, and the
    // counters agree.
    assert_eq!(handles.len(), JOBS);
    for (i, handle) in handles.into_iter().enumerate() {
        assert_eq!(handle.job_id(), i as u64);
        let result = handle.wait().expect("shard pool is alive");
        assert!(!result.is_failed());
        assert_eq!(result.job_id, i as u64);
    }
    let stats = service.stats();
    assert_eq!(stats.submitted, JOBS as u64);
    assert_eq!(stats.completed, JOBS as u64);
}
