//! Stream determinism suite: a stream's outcome is a pure function of
//! (spec, seed).
//!
//! Every property here drives the same seeded frame stream through 1, 2 and
//! 8 workers and asserts byte-identical outcomes: the same per-frame
//! fitness, the same drift ticks, the same adaptation results, the same
//! `output_hash` folded over every filtered frame.  Two layers are pinned:
//! the `ehw-stream` engine directly (full event-sequence equality), and
//! `JobSpec::Stream` through the service (report equality across worker *and*
//! platform-pool shapes, plus the progress-event feed).  This is the
//! contract that makes `EHW_WORKERS` safe to sweep over streaming jobs —
//! worker count changes wall-clock time, never results.

use ehw_image::noise::NoiseModel;
use ehw_parallel::ParallelConfig;
use ehw_service::{
    AdaptationConfig, DriftConfig, EhwService, JobProgress, JobSpec, NoiseSegment, SceneKind,
    ServiceConfig, StreamEvent, StreamReport, StreamSourceSpec,
};
use ehw_stream::{StreamConfig, SyntheticSource};
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// A schedule whose noise jumps hard enough at `shift_frame` that the drift
/// detector reliably fires: light salt & pepper, then a heavy dose.
fn shifting_schedule(shift_frame: usize) -> Vec<NoiseSegment> {
    vec![
        NoiseSegment {
            start_frame: 0,
            noise: NoiseModel::SaltPepper { density: 0.1 },
        },
        NoiseSegment {
            start_frame: shift_frame,
            noise: NoiseModel::SaltPepper { density: 0.5 },
        },
    ]
}

/// A small but drift-capable stream config: the window fills before the
/// shift, and the budget is large enough for adaptations to matter.
fn stream_config(seed: u64, workers: usize) -> StreamConfig {
    StreamConfig {
        seed,
        drift: DriftConfig {
            window: 3,
            threshold_pct: 130,
            cooldown: 4,
        },
        adaptation: AdaptationConfig {
            offspring: 5,
            mutation_rate: 2,
            generations: 6,
            max_millis: None,
            target_fitness: None,
        },
        parallel: ParallelConfig::with_workers(workers),
    }
}

/// Runs the engine directly and returns the report plus the full ordered
/// event sequence.
fn run_engine(seed: u64, frames: usize, workers: usize) -> (StreamReport, Vec<StreamEvent>) {
    let mut source = SyntheticSource::new(
        SceneKind::Shapes { complexity: 4 },
        16,
        16,
        frames,
        shifting_schedule(6),
        seed ^ 0xF00D,
    )
    .expect("valid synthetic source");
    let config = stream_config(seed, workers);
    let mut events = Vec::new();
    let report = ehw_stream::run_stream(
        &mut source,
        None,
        None,
        &config,
        &mut |event| events.push(*event),
        &|| false,
    );
    (report, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // ------------------------------------------------------------------
    // Engine: full event-sequence equality at 1, 2 and 8 workers
    // ------------------------------------------------------------------

    #[test]
    fn stream_engine_is_worker_count_invariant(seed in any::<u64>()) {
        let runs: Vec<_> = WORKER_COUNTS
            .iter()
            .map(|&workers| run_engine(seed, 14, workers))
            .collect();
        for (report, events) in &runs[1..] {
            prop_assert_eq!(report, &runs[0].0);
            prop_assert_eq!(events, &runs[0].1);
        }
        // The event feed and the report agree on what happened.
        let (report, events) = &runs[0];
        let frames = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Frame { .. }))
            .count();
        let drifts = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Drift { .. }))
            .count();
        prop_assert_eq!(frames, report.frames);
        prop_assert_eq!(drifts, report.drift_events);
    }

    // ------------------------------------------------------------------
    // Service: report and progress-feed equality across pool shapes
    // ------------------------------------------------------------------

    #[test]
    fn stream_jobs_are_pool_shape_invariant(seed in any::<u64>()) {
        let run = |platforms: usize, workers: usize| {
            let spec = JobSpec::stream(StreamSourceSpec::Synthetic {
                scene: SceneKind::Shapes { complexity: 4 },
                width: 16,
                height: 16,
                frames: 12,
                schedule: shifting_schedule(6),
            })
            .drift_window(3)
            .drift_threshold_pct(130)
            .adaptation_generations(6)
            .seed(seed)
            .build()
            .expect("valid stream spec");
            let service = EhwService::new(
                ServiceConfig::new(platforms).workers_per_platform(workers),
            )
            .expect("valid config");
            let handle = service.submit(spec).expect("accepted");
            let monitor = handle.monitor();
            let result = handle.wait().expect("shard pool is alive");
            let (events, closed) = monitor.events_since(0);
            prop_assert!(closed, "a settled job's event feed is closed");
            let stream_events: Vec<StreamEvent> = events
                .iter()
                .filter_map(|p: &JobProgress| p.stream)
                .collect();
            (result.as_stream().expect("stream job").clone(), stream_events)
        };

        let reference = run(1, 1);
        for &(platforms, workers) in &[(1usize, 2usize), (1, 8), (2, 2)] {
            let got = run(platforms, workers);
            prop_assert_eq!(
                &got, &reference,
                "diverged at {} platforms x {} workers", platforms, workers
            );
        }
    }
}

// ----------------------------------------------------------------------
// Deterministic spot checks (non-property, fixed seeds)
// ----------------------------------------------------------------------

/// The acceptance scenario: a scripted noise shift is detected, the stream
/// re-adapts within its generation budget, and every worker count tells the
/// byte-identical story.
#[test]
fn a_scripted_noise_shift_recovers_identically_at_any_worker_count() {
    let runs: Vec<_> = WORKER_COUNTS
        .iter()
        .map(|&workers| run_engine(0x57AB1E, 24, workers))
        .collect();
    for (report, events) in &runs[1..] {
        assert_eq!(report, &runs[0].0);
        assert_eq!(events, &runs[0].1);
    }

    let (report, events) = &runs[0];
    assert_eq!(report.frames, 24);
    assert!(
        report.drift_events >= 1,
        "the shift at frame 6 must trip the drift detector"
    );
    assert_eq!(report.adaptations_attempted, report.drift_events);
    for event in events {
        if let StreamEvent::Adaptation {
            generations_run, ..
        } = event
        {
            assert!(
                *generations_run <= 6,
                "adaptations must respect the generation budget"
            );
        }
    }
    // Drift can only fire once the calibration window has latched a
    // baseline, never before the scripted shift under the cooldown settings
    // used here.
    for event in events {
        if let StreamEvent::Drift { frame, .. } = event {
            assert!(*frame >= 3, "drift cannot fire before the window fills");
        }
    }
}

/// Re-running the identical spec and seed replays the stream byte for byte —
/// including through the service layer against the engine run directly.
#[test]
fn service_streams_replay_the_engine_byte_for_byte() {
    let seed = 0xDEC0DE;
    let (engine_report, _) = run_engine(seed, 12, 1);

    let service = EhwService::new(ServiceConfig::new(1)).expect("valid config");
    let spec = JobSpec::stream(StreamSourceSpec::Synthetic {
        scene: SceneKind::Shapes { complexity: 4 },
        width: 16,
        height: 16,
        frames: 12,
        schedule: shifting_schedule(6),
    })
    .drift_window(3)
    .drift_threshold_pct(130)
    .adaptation_generations(6)
    .seed(seed)
    .build()
    .expect("valid stream spec");
    let result = service
        .submit(spec.clone())
        .expect("accepted")
        .wait()
        .expect("shard pool is alive");
    let first = result.as_stream().expect("stream job").clone();

    // The jobs layer forks the synthetic source's noise seed from lane 0 of
    // the job seed, so the service run and the direct engine run agree when
    // the direct run uses that same derived source seed and the builder's
    // effective config (builder defaults except where the spec overrode).
    let derived = rand::SeedSequence::new(seed).fork(0).seed();
    let mut source = SyntheticSource::new(
        SceneKind::Shapes { complexity: 4 },
        16,
        16,
        12,
        shifting_schedule(6),
        derived,
    )
    .expect("valid synthetic source");
    let config = StreamConfig {
        seed,
        drift: DriftConfig {
            window: 3,
            threshold_pct: 130,
            ..DriftConfig::default()
        },
        adaptation: AdaptationConfig {
            generations: 6,
            ..AdaptationConfig::default()
        },
        parallel: ParallelConfig::with_workers(1),
    };
    let direct = ehw_stream::run_stream(&mut source, None, None, &config, &mut |_| {}, &|| false);
    assert_eq!(first, direct);

    // And a second service submission of the same spec replays the first.
    let again = service
        .submit(spec)
        .expect("accepted")
        .wait()
        .expect("shard pool is alive");
    assert_eq!(again.as_stream().expect("stream job"), &first);

    // Sanity: a different noise seed actually changes the output hash, so
    // the equalities above are not vacuous.  `run_engine` salts its source
    // seed with `^ 0xF00D`, so its frames differ from the service job's.
    assert_ne!(engine_report.output_hash, first.output_hash);
}
