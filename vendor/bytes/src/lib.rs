//! Minimal, dependency-free stand-in for the `bytes` crate.
//!
//! Provides a cheaply cloneable, immutable byte buffer with the small part of
//! the `bytes::Bytes` API the workspace uses.

#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from([]),
        }
    }

    /// Creates `Bytes` by copying a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes {
            data: iter.into_iter().collect::<Vec<u8>>().into(),
        }
    }
}
