//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The offline build environment cannot fetch crates.io, so this vendored
//! crate implements the subset of the Criterion 0.5 API the workspace's
//! benches use: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::sample_size`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a simple calibrated timing loop (warm-up, then timed
//! batches) reporting the median per-iteration time. It has none of real
//! Criterion's statistical machinery, but produces stable, comparable
//! numbers and — crucially — compiles and runs the bench targets.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group (`function-name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure under test; runs and times the workload.
pub struct Bencher {
    samples: usize,
    result_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch-size calibration: aim for batches of >= ~1 ms.
        let mut batch = 1usize;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.result_ns = per_iter[per_iter.len() / 2];
    }
}

fn run_bench(id: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        result_ns: f64::NAN,
    };
    f(&mut b);
    let ns = b.result_ns;
    let pretty = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    };
    println!("bench: {id:<52} {pretty}/iter");
}

/// The benchmark manager handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 11 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs a benchmark under `group-name/id`.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a benchmark that borrows a prepared input value.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    ($group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` that runs each group, mirroring Criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
