//! `any::<T>()` — the arbitrary-value strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, bool, f64, f32);

macro_rules! impl_arbitrary_int {
    ($($t:ty as $u:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng.gen::<$u>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy yielding arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
