//! `any::<T>()` — the arbitrary-value strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Proposes strictly simpler variants of `value` (see
    /// [`Strategy::shrink`]); the default offers none.
    fn shrink_value(value: &Self) -> Vec<Self> {
        let _ = value;
        Vec::new()
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng.gen::<$t>()
            }
            fn shrink_value(value: &Self) -> Vec<Self> {
                let v = *value;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0, v / 2, v - 1];
                out.dedup();
                out.into_iter().filter(|&c| c < v).collect()
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen::<bool>()
    }
    fn shrink_value(value: &Self) -> Vec<Self> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen::<f64>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen::<f32>()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty as $u:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng.gen::<$u>() as $t
            }
            fn shrink_value(value: &Self) -> Vec<Self> {
                // Towards zero from either side; every candidate is strictly
                // closer to zero than `value`, so shrinking terminates.
                let v = *value;
                if v == 0 {
                    return Vec::new();
                }
                let step = if v > 0 { -1 } else { 1 };
                let mut out = vec![0, v / 2, v + step];
                out.dedup();
                out
            }
        }
    )*};
}
impl_arbitrary_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_value(value)
    }
}

/// A strategy yielding arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
