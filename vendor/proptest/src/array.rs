//! Fixed-size array strategies (`uniformN`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `[S::Value; N]` by sampling `strategy` N times.
pub struct UniformArray<S, const N: usize> {
    strategy: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N>
where
    S::Value: Clone,
{
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.strategy.generate(rng))
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        // Simplify one element at a time (the length is fixed).
        let mut out = Vec::new();
        for (i, element) in value.iter().enumerate() {
            for candidate in self.strategy.shrink(element) {
                let mut v = value.clone();
                v[i] = candidate;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! uniform_fn {
    ($($fname:ident => $n:literal),+ $(,)?) => {$(
        /// An array strategy sampling the given element strategy repeatedly.
        pub fn $fname<S: Strategy>(strategy: S) -> UniformArray<S, $n> {
            UniformArray { strategy }
        }
    )+};
}

uniform_fn!(
    uniform1 => 1, uniform2 => 2, uniform3 => 3, uniform4 => 4,
    uniform5 => 5, uniform6 => 6, uniform7 => 7, uniform8 => 8,
    uniform9 => 9, uniform10 => 10, uniform12 => 12, uniform16 => 16,
    uniform24 => 24, uniform32 => 32,
);
