//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A length specification: an exact size or a half-open range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.hi - self.size.lo <= 1 {
            self.size.lo
        } else {
            rng.rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` strategy with the given element strategy and length spec
/// (an exact `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
