//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A length specification: an exact size or a half-open range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.hi - self.size.lo <= 1 {
            self.size.lo
        } else {
            rng.rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        // Shorter first: binary-search the length towards the minimum —
        // the minimal prefix, the half-way prefix, then one element less.
        let lo = self.size.lo;
        let len = value.len();
        if len > lo {
            let mut lengths = vec![lo, lo + (len - lo) / 2, len - 1];
            lengths.dedup();
            for l in lengths.into_iter().filter(|&l| l < len) {
                out.push(value[..l].to_vec());
            }
            // Dropping a single non-tail element (the `len - 1` prefix above
            // already covers the tail) so a failing element can surface at
            // the front of the minimal case.
            for i in 0..len - 1 {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        // Then simplify elements in place, one at a time.
        for (i, element) in value.iter().enumerate() {
            for candidate in self.element.shrink(element) {
                let mut v = value.clone();
                v[i] = candidate;
                out.push(v);
            }
        }
        out
    }
}

/// A `Vec` strategy with the given element strategy and length spec
/// (an exact `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
