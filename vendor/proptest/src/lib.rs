//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The offline build environment cannot fetch crates.io, so this vendored
//! crate implements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`,
//! range and tuple strategies, [`arbitrary::Arbitrary`] via `any::<T>()`,
//! [`array`]`::uniformN`, [`collection`]`::vec`, `Just`, `prop_oneof!`,
//! `ProptestConfig` and the `proptest!` test-harness macro itself.
//!
//! Failing cases are **shrunk** before being reported: strategies propose
//! simpler variants ([`strategy::Strategy::shrink`] — binary search towards
//! the minimum for integer ranges, shorter vectors and simpler elements for
//! collections), and the harness panics with the minimal failing input.
//! Unlike real proptest there is **no persistence** — generation is
//! deterministic instead: every test function derives its RNG seed from its
//! own name, so runs are reproducible from one invocation to the next.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop_assert;
    pub use crate::prop_assert_eq;
    pub use crate::prop_assert_ne;
    pub use crate::prop_oneof;
    pub use crate::proptest;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
}

/// Property-test assertion; panics (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly at random among the listed strategies (all must share a
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body for `cases` generated inputs.
///
/// On failure the input is **shrunk**: the argument strategies propose
/// simpler variants (binary search towards the minimum for integer ranges,
/// shorter vectors and simpler elements for collections), the first variant
/// that still fails replaces the input, and the process repeats until a
/// fixed point.  The test then panics with the minimal failing input, e.g.
/// `minimal failing input: (10,)`.  Argument values must be `Clone + Debug`
/// for this (every value generated in this workspace is).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $cfg; $($rest)*);
    };
    (@with_config $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[allow(unused_mut)]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                let __strategy = ($($strat,)+);
                let __run = $crate::strategy::property_fn(
                    &__strategy,
                    |($(mut $arg,)+)| { $body },
                );
                for _case in 0..config.cases {
                    let __value =
                        $crate::strategy::Strategy::generate(&__strategy, &mut rng);
                    let __failed = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || __run(::std::clone::Clone::clone(&__value)),
                        ),
                    )
                    .is_err();
                    if __failed {
                        // Quiet the default hook while `minimize` probes
                        // candidates — each failing probe would otherwise
                        // print a full panic report.  (The initial failure
                        // above already printed one with full context; a
                        // concurrently failing test in another thread loses
                        // its report during this window, which is the same
                        // trade-off real proptest makes.)
                        let __hook = ::std::panic::take_hook();
                        ::std::panic::set_hook(Box::new(|_| {}));
                        let __minimal =
                            $crate::strategy::minimize(&__strategy, __value, |__cand| {
                                ::std::panic::catch_unwind(
                                    ::std::panic::AssertUnwindSafe(
                                        || __run(::std::clone::Clone::clone(__cand)),
                                    ),
                                )
                                .is_err()
                            });
                        // Re-run the minimal case once to capture the
                        // assertion message explaining *why* it fails.
                        let __message = ::std::panic::catch_unwind(
                            ::std::panic::AssertUnwindSafe(
                                || __run(::std::clone::Clone::clone(&__minimal)),
                            ),
                        )
                        .err()
                        .map(|p| $crate::test_runner::panic_message(&*p))
                        .unwrap_or_default();
                        ::std::panic::set_hook(__hook);
                        panic!(
                            "proptest: property '{}' failed: {}; minimal failing input: {:?}",
                            stringify!($name),
                            __message,
                            __minimal,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config $crate::test_runner::ProptestConfig::default();
            $($rest)*
        );
    };
}
