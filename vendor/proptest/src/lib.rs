//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The offline build environment cannot fetch crates.io, so this vendored
//! crate implements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`,
//! range and tuple strategies, [`arbitrary::Arbitrary`] via `any::<T>()`,
//! [`array`]`::uniformN`, [`collection`]`::vec`, `Just`, `prop_oneof!`,
//! `ProptestConfig` and the `proptest!` test-harness macro itself.
//!
//! Unlike real proptest there is **no shrinking** and **no persistence** —
//! a failing case panics with the standard assertion message. Generation is
//! deterministic: every test function derives its RNG seed from its own name,
//! so runs are reproducible from one invocation to the next.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop_assert;
    pub use crate::prop_assert_eq;
    pub use crate::prop_assert_ne;
    pub use crate::prop_oneof;
    pub use crate::proptest;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
}

/// Property-test assertion; panics (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly at random among the listed strategies (all must share a
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $cfg; $($rest)*);
    };
    (@with_config $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[allow(unused_mut)]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    let ($(mut $arg,)+) = (
                        $($crate::strategy::Strategy::generate(&$strat, &mut rng),)+
                    );
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config $crate::test_runner::ProptestConfig::default();
            $($rest)*
        );
    };
}
