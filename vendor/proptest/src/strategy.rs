//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of some type.
///
/// Object-safe core (`generate`) plus `Sized`-gated combinators, so that
/// `Box<dyn Strategy<Value = T>>` works for [`Union`] / `prop_oneof!`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among several boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
