//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of some type.
///
/// Object-safe core (`generate` / `shrink`) plus `Sized`-gated combinators,
/// so that `Box<dyn Strategy<Value = T>>` works for [`Union`] / `prop_oneof!`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly simpler variants of a failing `value`, most
    /// aggressive first (the shrink driver, [`minimize`], takes the first
    /// candidate that still fails and repeats).  Strategies whose values have
    /// no natural order — `prop_map`ped values, unions, `Just` — return no
    /// candidates, which simply reports the original failure unshrunk.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

/// Ties the parameter type of a property-body closure to a strategy's value
/// type — a type-inference helper for the `proptest!` macro, which needs the
/// closure's tuple parameter fully typed before the body is checked.
pub fn property_fn<S: Strategy + ?Sized, F: Fn(S::Value)>(strategy: &S, f: F) -> F {
    let _ = strategy;
    f
}

/// Drives shrinking to a fixed point: starting from a failing `value`,
/// repeatedly replaces it with the first shrink candidate that still fails
/// (checked by `fails`), until no candidate fails or the evaluation budget is
/// spent.  Returns the minimal failing value found.
///
/// The budget bounds the number of `fails` evaluations, so a property with an
/// expensive body cannot loop unreasonably long while shrinking.
pub fn minimize<S, F>(strategy: &S, mut value: S::Value, mut fails: F) -> S::Value
where
    S: Strategy + ?Sized,
    F: FnMut(&S::Value) -> bool,
{
    let mut budget = 1_000usize;
    loop {
        let mut advanced = false;
        for candidate in strategy.shrink(&value) {
            if budget == 0 {
                return value;
            }
            budget -= 1;
            if fails(&candidate) {
                value = candidate;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return value;
        }
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among several boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Binary search towards the range start: try the start
                // itself, the midpoint, then the predecessor.  Arithmetic in
                // i128 so signed spans (e.g. the full i64 range) cannot
                // overflow the element type.
                let (lo, v) = (self.start as i128, *value as i128);
                if v <= lo {
                    return Vec::new();
                }
                let mut out = vec![lo, lo + (v - lo) / 2, v - 1];
                out.dedup();
                out.into_iter().filter(|&c| c < v).map(|c| c as $t).collect()
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Shrink one component at a time, holding the others fixed.
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = candidate;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}
impl_tuple_strategy!(A:0);
impl_tuple_strategy!(A:0, B:1);
impl_tuple_strategy!(A:0, B:1, C:2);
impl_tuple_strategy!(A:0, B:1, C:2, D:3);
impl_tuple_strategy!(A:0, B:1, C:2, D:3, E:4);
impl_tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5);
