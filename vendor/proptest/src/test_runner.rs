//! Test configuration and the deterministic RNG used for generation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration (only the `cases` knob is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Extracts the human-readable message from a caught panic payload (the
/// assertion text of a failed property).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The generation RNG handed to strategies.
///
/// Seeded from the FNV-1a hash of the test function's name, so every test
/// sees a distinct but fully reproducible stream on every run (this stand-in
/// has no failure persistence, so reproducibility is non-negotiable).
pub struct TestRng {
    /// The underlying seeded generator.
    pub rng: StdRng,
}

impl TestRng {
    /// Builds the deterministic RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(hash),
        }
    }
}
