//! Shrinking behaviour: failing cases reduce to a minimal counterexample.

use proptest::prelude::*;
use proptest::strategy::minimize;

#[test]
fn integer_range_shrinks_to_the_smallest_failing_value() {
    // The property "x < 37" fails for every x >= 37; binary-search shrinking
    // must land exactly on the boundary, not merely somewhere below the
    // first observed failure.
    let strategy = 0u32..100_000;
    let minimal = minimize(&strategy, 91_234, |v| *v >= 37);
    assert_eq!(minimal, 37);
}

#[test]
fn integer_range_respects_the_range_start() {
    let strategy = 10u8..200;
    // Everything fails: the minimum of the range is the minimal case.
    let minimal = minimize(&strategy, 137, |_| true);
    assert_eq!(minimal, 10);
}

#[test]
fn signed_any_shrinks_towards_zero() {
    let strategy = any::<i32>();
    let minimal = minimize(&strategy, -4_821, |v| v.abs() >= 12);
    assert_eq!(minimal.abs(), 12);
}

#[test]
fn vec_shrinks_length_and_elements_to_a_minimal_case() {
    // Failing when any element >= 10: the minimal counterexample is the
    // single-element vector [10].
    let strategy = proptest::collection::vec(0u8..100, 0..20);
    let start = vec![55, 3, 99, 12, 4, 4, 61];
    let minimal = minimize(&strategy, start, |v| v.iter().any(|&x| x >= 10));
    assert_eq!(minimal, vec![10]);
}

#[test]
fn vec_shrink_honours_the_minimum_length() {
    let strategy = proptest::collection::vec(0u8..100, 3..20);
    let minimal = minimize(&strategy, vec![9, 9, 9, 9, 9], |v| v.len() >= 3);
    assert_eq!(minimal, vec![0, 0, 0]);
}

#[test]
fn tuple_shrink_minimises_each_component_independently() {
    let strategy = (0u32..1000, 0u32..1000);
    let minimal = minimize(&strategy, (900, 650), |&(a, b)| a >= 25 && b >= 75);
    assert_eq!(minimal, (25, 75));
}

#[test]
fn passing_values_are_left_alone() {
    let strategy = 0u64..1000;
    assert_eq!(minimize(&strategy, 421, |_| false), 421);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // A seeded failure must be reported as its minimal shrunk case: the
    // property "x < 10" over 0..100_000 virtually always first fails far from
    // the boundary, and the harness must walk it down to exactly 10.
    #[test]
    #[should_panic(expected = "minimal failing input: (10,)")]
    fn seeded_failure_is_reported_minimal(x in 0u32..100_000) {
        prop_assert!(x < 10);
    }

    // Multi-argument properties shrink every argument.
    #[test]
    #[should_panic(expected = "minimal failing input: (5, [7])")]
    fn multi_argument_failure_shrinks_all_arguments(
        threshold in 0usize..50,
        data in proptest::collection::vec(0u8..50, 0..8),
    ) {
        prop_assert!(threshold < 5 || !data.iter().any(|&x| x >= 7));
    }

    // Properties that hold never trigger the shrinking machinery.
    #[test]
    fn passing_properties_stay_green(a in 0u16..100, b in 0u16..100) {
        prop_assert!(u32::from(a) + u32::from(b) <= 198);
    }
}
