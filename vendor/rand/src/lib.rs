//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of the `rand 0.8` API the workspace actually uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`, `fill`), [`SeedableRng`]
//! (`seed_from_u64`, `from_seed`) and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — deterministic,
//! high quality for simulation purposes, but **not** the ChaCha12 generator
//! of the real crate, so seeded value streams differ from upstream `rand`.
//! Everything in the workspace only relies on determinism-given-a-seed, not
//! on specific streams, so this is an acceptable substitution.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

pub use seq::SeedSequence;

/// A random number generator core: the source of raw random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly over their whole value range.
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types that can be drawn uniformly from a `Range`.
pub trait SampleUniform: Copy {
    /// Draws a value uniformly from `[low, high)`. Panics if the range is
    /// empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from an empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Debiased multiply-shift (Lemire); the span of every range in
                // this workspace is tiny compared to 2^64 so a single draw with
                // rejection on the short zone is fine.
                let zone = u128::from(u64::MAX) + 1 - ((u128::from(u64::MAX) + 1) % span);
                loop {
                    let draw = u128::from(rng.next_u64());
                    if draw < zone {
                        return (low as u128).wrapping_add(draw % span) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample from an empty range");
        low + <f64 as Standard>::sample(rng) * (high - low)
    }
}

/// Extension trait with the user-facing sampling methods.
pub trait Rng: RngCore {
    /// Draws a value of type `T` uniformly over its whole range
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from the half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        <f64 as Standard>::sample(self) < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array in real `rand`).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 the
    /// way `rand` does for small seeds.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}
