//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded generator: **xoshiro256++**.
///
/// Not the ChaCha12 generator of upstream `rand` — value streams differ from
/// the real `StdRng` — but deterministic given a seed, fast, and of more than
/// adequate statistical quality for the simulations in this repository.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.step().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(b);
        }
        // All-zero state is a fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        StdRng { s }
    }
}
