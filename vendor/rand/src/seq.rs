//! Deterministic seed splitting for parallel workloads.
//!
//! Iterative statistical procedures parallelize cleanly when every unit of
//! work is a pure function of its own seeded stream.  [`SeedSequence`] is the
//! splitter that makes that cheap: from one root seed it derives arbitrarily
//! many statistically independent child seeds, either *purely* (by path, with
//! [`SeedSequence::fork`]) or *statefully* (in spawn order, with
//! [`SeedSequence::spawn`]).
//!
//! The pure form is the one parallel code wants: `root.fork(g).fork(i)` names
//! the stream of candidate `i` in generation `g` without any shared mutable
//! state, so a worker pool of any size derives **exactly** the same stream for
//! the same logical unit of work.  That is the property the evolution and
//! fault-campaign engines build their "same seed ⇒ same result at any worker
//! count" guarantee on.
//!
//! Mixing uses the SplitMix64 finalizer (the same avalanche function
//! [`SeedableRng::seed_from_u64`] uses for seed expansion), keyed per fork
//! index with a golden-ratio multiply so that `fork(0)`, `fork(1)`, … land in
//! well-separated regions of the state space.

use crate::rngs::StdRng;
use crate::SeedableRng;

/// SplitMix64 finalizer: a strong 64-bit avalanche permutation.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A splittable source of deterministic seeds.
///
/// See the [module documentation](self) for the design rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    state: u64,
    spawned: u64,
}

impl SeedSequence {
    /// Creates the root sequence for a user-facing seed.
    pub fn new(seed: u64) -> Self {
        SeedSequence {
            // Decorrelate from direct `seed_from_u64(seed)` users so a run
            // that seeds an RNG and a splitter from the same value does not
            // alias streams.
            state: mix64(seed ^ 0x5EED_5E9C_E5BA_5E64),
            spawned: 0,
        }
    }

    /// Pure split: the child sequence at `index`.
    ///
    /// Forking is position-addressed and side-effect free: any number of
    /// threads may fork the same parent concurrently, and `fork(i)` always
    /// names the same child no matter who asks or in which order.
    #[must_use]
    pub fn fork(&self, index: u64) -> SeedSequence {
        SeedSequence {
            state: mix64(self.state ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            spawned: 0,
        }
    }

    /// Stateful split: the next child in spawn order (child 0, 1, 2, …).
    ///
    /// Equivalent to `fork(n)` where `n` counts previous `spawn` calls.
    pub fn spawn(&mut self) -> SeedSequence {
        let child = self.fork(self.spawned);
        self.spawned += 1;
        child
    }

    /// The raw 64-bit seed this sequence denotes.
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// A [`StdRng`] seeded from this sequence.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.state)
    }

    /// Convenience for the common two-level pattern: the seed of stream
    /// `path = [a, b, …]` under `root`, i.e. `root.fork(a).fork(b)…`.
    pub fn derive(root_seed: u64, path: &[u64]) -> u64 {
        let mut seq = SeedSequence::new(root_seed);
        for &p in path {
            seq = seq.fork(p);
        }
        seq.seed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    #[test]
    fn forks_are_deterministic() {
        let a = SeedSequence::new(42).fork(3).fork(7);
        let b = SeedSequence::new(42).fork(3).fork(7);
        assert_eq!(a.seed(), b.seed());
        assert_eq!(a.rng().next_u64(), b.rng().next_u64());
    }

    #[test]
    fn sibling_forks_differ() {
        let root = SeedSequence::new(1);
        let seeds: Vec<u64> = (0..64).map(|i| root.fork(i).seed()).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "fork indices must not collide");
    }

    #[test]
    fn different_roots_give_different_children() {
        assert_ne!(
            SeedSequence::new(1).fork(0).seed(),
            SeedSequence::new(2).fork(0).seed()
        );
    }

    #[test]
    fn spawn_matches_fork_by_index() {
        let mut stateful = SeedSequence::new(9);
        let pure = SeedSequence::new(9);
        for i in 0..5 {
            assert_eq!(stateful.spawn().seed(), pure.fork(i).seed());
        }
    }

    #[test]
    fn derive_matches_nested_forks() {
        assert_eq!(
            SeedSequence::derive(11, &[2, 5]),
            SeedSequence::new(11).fork(2).fork(5).seed()
        );
    }

    #[test]
    fn fork_order_independence() {
        // fork is pure: reading children in any order yields the same seeds.
        let root = SeedSequence::new(77);
        let forward: Vec<u64> = (0..8).map(|i| root.fork(i).seed()).collect();
        let backward: Vec<u64> = (0..8).rev().map(|i| root.fork(i).seed()).collect();
        let backward_reversed: Vec<u64> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward_reversed);
    }

    #[test]
    fn splitter_does_not_alias_direct_seeding() {
        use crate::SeedableRng;
        let direct = crate::rngs::StdRng::seed_from_u64(5).next_u64();
        let split = SeedSequence::new(5).rng().next_u64();
        assert_ne!(direct, split);
    }
}
