//! Minimal stand-in for the `serde` crate facade.
//!
//! The offline build environment cannot fetch crates.io, and the workspace
//! only uses `serde` for `#[derive(Serialize, Deserialize)]` annotations —
//! no code path serializes anything yet. This facade re-exports no-op derive
//! macros and declares same-named marker traits so both the derive and trait
//! namespaces of `serde::Serialize` / `serde::Deserialize` resolve. When real
//! serialization lands, swap this vendored crate for the genuine article by
//! flipping the `[workspace.dependencies]` entry.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for the `serde::Serialize` trait. The no-op derive does
/// not implement it, so avoid `T: Serialize` bounds against this facade.
pub trait Serialize {}

/// Marker stand-in for the `serde::Deserialize` trait (see [`Serialize`]).
pub trait Deserialize<'de>: Sized {}
