//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The offline build environment cannot fetch the real `serde` stack, and
//! nothing in this workspace actually serializes data yet — the derives only
//! annotate types for future wire formats. These macros therefore accept the
//! same attribute grammar (`#[serde(...)]` is declared so the compiler will
//! not reject it) and expand to nothing.

use proc_macro::TokenStream;

/// Accepts the derive input and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the derive input and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
